// Tests for src/telemetry: histogram bucket arithmetic (boundary pins,
// percentile error bound), lock-free per-lane recording (concurrent
// merge determinism), the Prometheus-style exposition (golden text,
// atomic file rewrite) and the span trace ring (Chrome JSON
// well-formedness, bounded drops, compiled-out no-op).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "report/json.h"
#include "support/error.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace mood::telemetry::testing {
// Defined in telemetry_disabled_tracing.cpp (compiled with
// MOOD_DISABLE_TRACING); returns how often MOOD_TRACE evaluated its tags.
int disabled_tracing_evaluations();
}  // namespace mood::telemetry::testing

namespace mood::telemetry {
namespace {

TEST(Histogram, BucketBoundaryPins) {
  // Underflow: zero, negatives, NaN and anything below 2^-24.
  EXPECT_EQ(0u, Histogram::bucket_index(0.0));
  EXPECT_EQ(0u, Histogram::bucket_index(-1.0));
  EXPECT_EQ(0u, Histogram::bucket_index(std::nan("")));
  EXPECT_EQ(0u, Histogram::bucket_index(std::ldexp(1.0, -25)));
  EXPECT_EQ(0u, Histogram::bucket_index(
                    std::nextafter(std::ldexp(1.0, -24), 0.0)));
  // First regular bucket starts exactly at 2^-24.
  EXPECT_EQ(1u, Histogram::bucket_index(std::ldexp(1.0, -24)));
  // 1.0 s: octave exponent 0, first subdivision.
  const std::size_t one = Histogram::bucket_index(1.0);
  EXPECT_EQ(1u + std::size_t(0 - Histogram::kMinExp) * 16u, one);
  EXPECT_DOUBLE_EQ(1.0, Histogram::bucket_lower_bound(one));
  EXPECT_DOUBLE_EQ(1.0625, Histogram::bucket_upper_bound(one));
  // The upper bound is exclusive: 1.0625 opens the next bucket.
  EXPECT_EQ(one + 1, Histogram::bucket_index(1.0625));
  // Overflow: >= 2^7 s, including infinity.
  EXPECT_EQ(Histogram::kBucketCount - 1, Histogram::bucket_index(128.0));
  EXPECT_EQ(Histogram::kBucketCount - 1,
            Histogram::bucket_index(std::numeric_limits<double>::infinity()));
  EXPECT_DOUBLE_EQ(128.0,
                   Histogram::bucket_lower_bound(Histogram::kBucketCount - 1));
}

TEST(Histogram, EveryValueFallsInsideItsBucketBounds) {
  // Sweep values across the whole layout: each must satisfy
  // lower <= v < upper of its own bucket.
  for (int e = Histogram::kMinExp; e < Histogram::kMaxExp; ++e) {
    for (int j = 0; j < Histogram::kSubdivisions; ++j) {
      const double v = std::ldexp(1.0 + (j + 0.4) / 16.0, e);
      const std::size_t b = Histogram::bucket_index(v);
      EXPECT_LE(Histogram::bucket_lower_bound(b), v);
      EXPECT_LT(v, Histogram::bucket_upper_bound(b));
    }
  }
}

TEST(Histogram, PercentileNearestRankWithinBucketResolution) {
  Histogram histogram(1);
  // 1..100 ms, one sample each: the exact nearest-rank p50 is 0.050.
  for (int i = 1; i <= 100; ++i) histogram.record(0.001 * i);
  const HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(100u, snapshot.count);
  EXPECT_NEAR(0.050, snapshot.percentile(0.50), 0.050 * 0.05);
  EXPECT_NEAR(0.095, snapshot.percentile(0.95), 0.095 * 0.05);
  EXPECT_NEAR(0.099, snapshot.percentile(0.99), 0.099 * 0.05);
  EXPECT_NEAR(0.0505, snapshot.mean(), 1e-12);  // exact, no bucket error
  // Conservative max: the upper bound of the highest non-empty bucket.
  EXPECT_GE(snapshot.max(), 0.100);
  EXPECT_LE(snapshot.max(), 0.100 * 1.0625);
  // Percentiles are monotone in q.
  EXPECT_LE(snapshot.percentile(0.50), snapshot.percentile(0.95));
  EXPECT_LE(snapshot.percentile(0.95), snapshot.percentile(0.99));
}

TEST(Histogram, RelativeErrorBoundAgainstExactPercentiles) {
  // Deterministic LCG samples spanning several decades; the documented
  // contract (replay.h) is <= 5% relative error vs the exact
  // nearest-rank value, the layout's actual bound is ~3.2%.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return double(state >> 11) / double(1ull << 53);
  };
  std::vector<double> values;
  Histogram histogram(1);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::pow(10.0, -5.0 + 4.0 * next());  // 10 us .. 10 s
    values.push_back(v);
    histogram.record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snapshot = histogram.snapshot();
  for (const double q : {0.50, 0.90, 0.95, 0.99}) {
    const auto rank = std::size_t(std::ceil(q * double(values.size())));
    const double exact = values[rank - 1];
    const double estimated = snapshot.percentile(q);
    EXPECT_NEAR(estimated, exact, exact * 0.05)
        << "q=" << q << " exact=" << exact << " estimated=" << estimated;
  }
}

TEST(Histogram, ConcurrentRecordingMergesDeterministically) {
  // 8 writer threads over 4 lanes. Values are dyadic rationals so the
  // atomic double sums are exact whatever the interleaving — the merged
  // snapshot must come out bit-identical on every run.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Histogram histogram(4);
  Counter counter(4);
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      const std::size_t lane = std::size_t(t) % 4;
      const double value = std::ldexp(1.5, -(2 + t % 4));  // 1.5 * 2^-k
      for (int i = 0; i < kPerThread; ++i) {
        histogram.record(value, lane);
        counter.add(1, lane);
      }
    });
  }
  for (auto& writer : writers) writer.join();

  EXPECT_EQ(std::uint64_t(kThreads) * kPerThread, counter.value());
  const HistogramSnapshot merged = histogram.snapshot();
  EXPECT_EQ(std::uint64_t(kThreads) * kPerThread, merged.count);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum = expected_sum + kPerThread * std::ldexp(1.5, -(2 + t % 4));
  }
  EXPECT_DOUBLE_EQ(expected_sum, merged.sum);
  // Each lane took exactly two threads recording one value each.
  EXPECT_EQ(4u, merged.buckets.size());
  for (const auto& bucket : merged.buckets) {
    EXPECT_EQ(2u * kPerThread, bucket.count);
  }
  // Per-lane views partition the merge.
  std::uint64_t lane_total = 0;
  for (std::size_t lane = 0; lane < 4; ++lane) {
    lane_total += histogram.lane_snapshot(lane).count;
  }
  EXPECT_EQ(merged.count, lane_total);
}

TEST(Histogram, OutOfRangeLaneFallsBackToLaneZero) {
  Histogram histogram(2);
  histogram.record(0.5, 99);  // clamped, not UB
  EXPECT_EQ(1u, histogram.lane_snapshot(0).count);
  EXPECT_EQ(0u, histogram.lane_snapshot(1).count);
}

TEST(Registry, CreateOrGetReturnsSameInstrument) {
  MetricsRegistry registry(4);
  Counter& a = registry.counter("mood_test_total");
  Counter& b = registry.counter("mood_test_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(4u, a.lane_count());
  Histogram& h = registry.histogram("mood_test_seconds");
  EXPECT_EQ(&h, &registry.histogram("mood_test_seconds"));
}

TEST(Registry, KindConflictAndBadNamesThrow) {
  MetricsRegistry registry(1);
  registry.counter("mood_kind_test");
  EXPECT_THROW(registry.gauge("mood_kind_test"), support::PreconditionError);
  EXPECT_THROW(registry.histogram("mood_kind_test"),
               support::PreconditionError);
  EXPECT_THROW(registry.counter("1starts_with_digit"),
               support::PreconditionError);
  EXPECT_THROW(registry.counter("has space"), support::PreconditionError);
  EXPECT_THROW(registry.counter(""), support::PreconditionError);
}

TEST(Exposition, GoldenText) {
  MetricsRegistry registry(1);
  registry.counter("a_total").add(3);
  registry.gauge("g").set(2.5);
  Histogram& h = registry.histogram("h");
  h.record(0.25);
  h.record(1.0);
  h.record(1.0);
  const std::string expected =
      "# TYPE a_total counter\n"
      "a_total 3\n"
      "# TYPE g gauge\n"
      "g 2.5\n"
      "# TYPE h histogram\n"
      "h_bucket{le=\"0.265625\"} 1\n"
      "h_bucket{le=\"1.0625\"} 3\n"
      "h_bucket{le=\"+Inf\"} 3\n"
      "h_sum 2.25\n"
      "h_count 3\n";
  EXPECT_EQ(expected, render_exposition(registry.snapshot()));
}

TEST(Exposition, PerShardSeriesOnlyWhenSharded) {
  MetricsRegistry sharded(2);
  Histogram& h = sharded.histogram("mood_lat_seconds");
  h.record(0.5, 0);
  h.record(0.5, 1);
  const std::string text = render_exposition(sharded.snapshot());
  EXPECT_NE(std::string::npos,
            text.find("mood_lat_seconds_count{shard=\"0\"} 1"));
  EXPECT_NE(std::string::npos,
            text.find("mood_lat_seconds_count{shard=\"1\"} 1"));
  EXPECT_NE(std::string::npos, text.find("mood_lat_seconds_count 2"));

  MetricsRegistry single(1);
  single.histogram("mood_lat_seconds").record(0.5);
  EXPECT_EQ(std::string::npos,
            render_exposition(single.snapshot()).find("shard="));
}

TEST(Exposition, AtomicFileRewrite) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mood_telemetry_test";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "metrics.prom").string();
  write_exposition_file(path, "first 1\n");
  write_exposition_file(path, "second 2\n");
  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ("second 2\n", content.str());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove_all(dir);
}

TEST(Trace, ChromeJsonIsWellFormedAndTagged) {
  TraceSession& session = TraceSession::instance();
  session.start(64);
  {
    MOOD_TRACE("test.decide", {.shard = 3, .user = "u\"quoted\"", .batch = 7});
  }
  { MOOD_TRACE("test.plain"); }
  session.stop();
  ASSERT_EQ(2u, session.span_count());
  EXPECT_EQ(0u, session.dropped());

  std::ostringstream out;
  session.dump_chrome_json(out);
  const report::Json document = report::Json::parse(out.str());
  const report::Json* events = document.find("traceEvents");
  ASSERT_NE(nullptr, events);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(2u, events->items().size());
  const report::Json& decide = events->items()[0];
  EXPECT_EQ("test.decide", decide.string_or("name", ""));
  EXPECT_EQ("X", decide.string_or("ph", ""));
  EXPECT_EQ(3, decide.int_or("tid", -1));  // tagged spans: tid = shard
  const report::Json* args = decide.find("args");
  ASSERT_NE(nullptr, args);
  EXPECT_EQ(3, args->int_or("shard", -1));
  EXPECT_EQ(7, args->int_or("batch", -1));
  EXPECT_EQ("u\"quoted\"", args->string_or("user", ""));
  // Untagged spans get a thread-derived tid away from shard numbers.
  EXPECT_GE(events->items()[1].int_or("tid", -1), 1000);
}

TEST(Trace, RingBoundsMemoryAndCountsDrops) {
  TraceSession& session = TraceSession::instance();
  session.start(4);
  for (int i = 0; i < 10; ++i) {
    MOOD_TRACE("test.flood");
  }
  session.stop();
  EXPECT_EQ(4u, session.span_count());
  EXPECT_EQ(6u, session.dropped());
  std::ostringstream out;
  session.dump_chrome_json(out);
  const report::Json document = report::Json::parse(out.str());
  const report::Json* other = document.find("otherData");
  ASSERT_NE(nullptr, other);
  EXPECT_EQ("6", other->string_or("dropped", ""));
}

TEST(Trace, DisabledAtRuntimeRecordsNothing) {
  TraceSession& session = TraceSession::instance();
  ASSERT_FALSE(session.enabled());
  const std::uint64_t before = session.span_count();
  { MOOD_TRACE("test.off"); }
  EXPECT_EQ(before, session.span_count());
}

TEST(Trace, CompiledOutMacroEvaluatesNothing) {
  // The sibling TU is built with -DMOOD_DISABLE_TRACING; its MOOD_TRACE
  // must not have evaluated the side-effecting tag expression.
  EXPECT_EQ(0, mood::telemetry::testing::disabled_tracing_evaluations());
}

}  // namespace
}  // namespace mood::telemetry
