// Unit tests for the utility metrics: temporal projection, STD (Eq. 8),
// distortion bands and the data-loss accumulator (Eq. 7).

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/data_loss.h"
#include "metrics/distortion.h"
#include "support/error.h"
#include "test_helpers.h"

namespace mood::metrics {
namespace {

using geo::GeoPoint;
using mobility::Trace;
using testing::rec;

TEST(TemporalProjection, InterpolatesBetweenRecords) {
  const Trace original("u", {rec(45.0, 5.0, 0), rec(46.0, 5.0, 100)});
  const GeoPoint mid = temporal_projection(original, 50);
  EXPECT_NEAR(mid.lat, 45.5, 1e-9);
  const GeoPoint quarter = temporal_projection(original, 25);
  EXPECT_NEAR(quarter.lat, 45.25, 1e-9);
}

TEST(TemporalProjection, ClampsOutsideSpan) {
  const Trace original("u", {rec(45.0, 5.0, 100), rec(46.0, 5.0, 200)});
  EXPECT_NEAR(temporal_projection(original, 0).lat, 45.0, 1e-12);
  EXPECT_NEAR(temporal_projection(original, 999).lat, 46.0, 1e-12);
}

TEST(TemporalProjection, HandlesDuplicateTimestamps) {
  const Trace original("u", {rec(45.0, 5.0, 100), rec(46.0, 5.0, 100),
                             rec(47.0, 5.0, 200)});
  // At the duplicated instant, any of the stamped positions is acceptable;
  // the implementation must not divide by zero.
  const GeoPoint p = temporal_projection(original, 100);
  EXPECT_GE(p.lat, 45.0);
  EXPECT_LE(p.lat, 46.0);
}

TEST(TemporalProjection, RejectsEmptyOriginal) {
  EXPECT_THROW(temporal_projection(Trace("u", {}), 0),
               support::PreconditionError);
}

TEST(Std, ZeroForIdenticalTrace) {
  const Trace t("u", {rec(45.0, 5.0, 0), rec(45.1, 5.1, 100),
                      rec(45.2, 5.2, 200)});
  EXPECT_NEAR(spatial_temporal_distortion(t, t), 0.0, 1e-9);
}

TEST(Std, ExactForUniformNorthShift) {
  const Trace original("u", {rec(45.0, 5.0, 0), rec(45.0, 5.0, 100)});
  std::vector<mobility::Record> moved;
  for (const auto& r : original.records()) {
    moved.push_back(
        mobility::Record{geo::destination(r.position, 0.0, 750.0), r.time});
  }
  const Trace shifted("u", std::move(moved));
  EXPECT_NEAR(spatial_temporal_distortion(original, shifted), 750.0, 1.0);
}

TEST(Std, UsesTemporalProjectionNotIndexAlignment) {
  // Protected trace has MORE records than the original (TRL does this);
  // each one must be compared to the interpolated original position.
  const Trace original("u", {rec(45.0, 5.0, 0), rec(46.0, 5.0, 100)});
  const Trace dense("u", {rec(45.25, 5.0, 25), rec(45.5, 5.0, 50),
                          rec(45.75, 5.0, 75)});
  EXPECT_NEAR(spatial_temporal_distortion(original, dense), 0.0, 1e-6);
}

TEST(Std, EmptyProtectedIsInfinite) {
  const Trace original("u", {rec(45.0, 5.0, 0)});
  EXPECT_TRUE(std::isinf(spatial_temporal_distortion(original,
                                                     Trace("u", {}))));
}

TEST(Std, EmptyOriginalThrows) {
  const Trace any("u", {rec(45.0, 5.0, 0)});
  EXPECT_THROW(spatial_temporal_distortion(Trace("u", {}), any),
               support::PreconditionError);
}

TEST(Std, MetricInterfaceDelegates) {
  const SpatialTemporalDistortion metric;
  EXPECT_EQ(metric.name(), "STD");
  const Trace t("u", {rec(45.0, 5.0, 0), rec(45.0, 5.0, 50)});
  EXPECT_NEAR(metric.distortion(t, t), 0.0, 1e-9);
}

TEST(DistortionBands, PaperThresholds) {
  EXPECT_EQ(distortion_band(0.0), DistortionBand::kLow);
  EXPECT_EQ(distortion_band(499.9), DistortionBand::kLow);
  EXPECT_EQ(distortion_band(500.0), DistortionBand::kMedium);
  EXPECT_EQ(distortion_band(999.9), DistortionBand::kMedium);
  EXPECT_EQ(distortion_band(1000.0), DistortionBand::kHigh);
  EXPECT_EQ(distortion_band(4999.9), DistortionBand::kHigh);
  EXPECT_EQ(distortion_band(5000.0), DistortionBand::kExtremelyHigh);
  EXPECT_EQ(distortion_band(1e9), DistortionBand::kExtremelyHigh);
}

TEST(DistortionBands, NamesAreStable) {
  EXPECT_EQ(to_string(DistortionBand::kLow), "low(<500m)");
  EXPECT_EQ(to_string(DistortionBand::kExtremelyHigh), "extreme(>=5000m)");
}

TEST(DataLoss, RatioFollowsEquationSeven) {
  DataLossAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.ratio(), 0.0);  // empty dataset: nothing lost
  acc.add_protected(900);
  acc.add_lost(100);
  EXPECT_DOUBLE_EQ(acc.ratio(), 0.1);
  EXPECT_EQ(acc.total_records(), 1000u);
  EXPECT_EQ(acc.lost_records(), 100u);
  EXPECT_EQ(acc.protected_records(), 900u);
}

TEST(DataLoss, AllLostIsOne) {
  DataLossAccumulator acc;
  acc.add_lost(42);
  EXPECT_DOUBLE_EQ(acc.ratio(), 1.0);
}

TEST(DataLoss, EmptyAndZeroRecordInputs) {
  // Eq. 7 boundary: |D|_r == 0 must yield 0, not NaN — both for a fresh
  // accumulator and after zero-record add calls.
  DataLossAccumulator acc;
  EXPECT_DOUBLE_EQ(acc.ratio(), 0.0);
  acc.add_protected(0);
  acc.add_lost(0);
  EXPECT_EQ(acc.total_records(), 0u);
  EXPECT_DOUBLE_EQ(acc.ratio(), 0.0);
}

TEST(DataLoss, AllLostAcrossMultipleTraces) {
  DataLossAccumulator acc;
  acc.add_lost(10);
  acc.add_lost(0);  // an empty lost trace must not disturb the ratio
  acc.add_lost(32);
  EXPECT_DOUBLE_EQ(acc.ratio(), 1.0);
  EXPECT_EQ(acc.protected_records(), 0u);
}

TEST(DataLoss, AccumulatesAcrossManyTraces) {
  DataLossAccumulator acc;
  for (int i = 0; i < 10; ++i) {
    acc.add_protected(50);
    acc.add_lost(i < 2 ? 50 : 0);  // 2 of 10 users fully lost
  }
  EXPECT_DOUBLE_EQ(acc.ratio(), 100.0 / 600.0);
}

}  // namespace
}  // namespace mood::metrics
