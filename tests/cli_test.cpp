// Tests for the `mood` CLI: subcommand dispatch, typed-flag parsing and
// exit codes (0 ok / 1 runtime failure / 2 usage error), plus a small
// end-to-end simulate -> evaluate -> report pipeline exercised in-process
// through mood::cli::run.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "mood_cli/cli.h"
#include "report/json.h"
#include "report/report.h"
#include "support/error.h"
#include "support/options.h"

namespace mood::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

/// Runs the CLI in-process with "mood" prepended as argv[0].
CliResult run_cli(std::initializer_list<std::string> args) {
  std::vector<std::string> storage{"mood"};
  storage.insert(storage.end(), args.begin(), args.end());
  std::vector<const char*> argv;
  argv.reserve(storage.size());
  for (const auto& arg : storage) argv.push_back(arg.c_str());

  std::ostringstream out, err;
  const int code =
      run(static_cast<int>(argv.size()), argv.data(), out, err);
  return {code, out.str(), err.str()};
}

// ----------------------------------------------------------- dispatch --

TEST(CliDispatch, NoArgumentsIsUsageError) {
  const auto result = run_cli({});
  EXPECT_EQ(result.code, kExitUsage);
  EXPECT_NE(result.err.find("usage: mood"), std::string::npos);
}

TEST(CliDispatch, TopLevelHelpExitsZero) {
  for (const auto* flag : {"--help", "-h", "help"}) {
    const auto result = run_cli({flag});
    EXPECT_EQ(result.code, kExitOk) << flag;
    EXPECT_NE(result.out.find("simulate"), std::string::npos);
    EXPECT_NE(result.out.find("evaluate"), std::string::npos);
    EXPECT_NE(result.out.find("report"), std::string::npos);
  }
}

TEST(CliDispatch, UnknownSubcommandIsUsageError) {
  const auto result = run_cli({"frobnicate"});
  EXPECT_EQ(result.code, kExitUsage);
  EXPECT_NE(result.err.find("unknown command 'frobnicate'"),
            std::string::npos);
}

TEST(CliDispatch, SubcommandHelpExitsZero) {
  for (const auto* command : {"simulate", "evaluate", "report", "replay"}) {
    const auto result = run_cli({command, "--help"});
    EXPECT_EQ(result.code, kExitOk) << command;
    EXPECT_NE(result.out.find("--help"), std::string::npos);
  }
  // And the help text documents the interesting flags.
  EXPECT_NE(run_cli({"evaluate", "--help"}).out.find("--strategies"),
            std::string::npos);
  EXPECT_NE(run_cli({"evaluate", "--help"}).out.find("--geoi-epsilon"),
            std::string::npos);
  EXPECT_NE(run_cli({"replay", "--help"}).out.find("--shards"),
            std::string::npos);
  EXPECT_NE(run_cli({"replay", "--help"}).out.find("--window-hours"),
            std::string::npos);
}

// -------------------------------------------------------------- flags --

TEST(CliFlags, UnknownFlagIsUsageError) {
  const auto result = run_cli({"simulate", "--no-such-flag=1"});
  EXPECT_EQ(result.code, kExitUsage);
  EXPECT_NE(result.err.find("--no-such-flag"), std::string::npos);
}

TEST(CliFlags, MistypedValueIsUsageError) {
  const auto result = run_cli({"simulate", "--scale=abc"});
  EXPECT_EQ(result.code, kExitUsage);
  EXPECT_NE(result.err.find("scale"), std::string::npos);
}

TEST(CliFlags, SpaceSeparatedFlagValueIsUsageError) {
  // `--out city.csv` parses as out=true plus a stray positional; it must
  // be rejected, not silently write a file named "true".
  for (const auto& args : {std::vector<std::string>{"simulate", "--out",
                                                    "city.csv"},
                           std::vector<std::string>{"evaluate", "--input",
                                                    "data.csv"}}) {
    std::vector<std::string> with_prog{"mood"};
    with_prog.insert(with_prog.end(), args.begin(), args.end());
    std::vector<const char*> argv;
    for (const auto& arg : with_prog) argv.push_back(arg.c_str());
    std::ostringstream out, err;
    const int code =
        run(static_cast<int>(argv.size()), argv.data(), out, err);
    EXPECT_EQ(code, kExitUsage) << args[0];
    EXPECT_NE(err.str().find("--name=value"), std::string::npos) << args[0];
  }
}

TEST(CliFlags, UnknownStrategyIsUsageError) {
  const auto result = run_cli({"evaluate", "--strategies=warp-drive"});
  EXPECT_EQ(result.code, kExitUsage);
  EXPECT_NE(result.err.find("warp-drive"), std::string::npos);
}

TEST(CliFlags, UnknownAttackIsUsageError) {
  // The dataset must exist before attacks are resolved, so keep it tiny.
  const auto result = run_cli({"evaluate", "--preset=privamov",
                               "--scale=0.01", "--min-records=2",
                               "--attacks=quantum"});
  EXPECT_EQ(result.code, kExitUsage);
  EXPECT_NE(result.err.find("quantum"), std::string::npos);
}

TEST(CliFlags, UnknownPresetIsRuntimeFailure) {
  const auto result = run_cli({"simulate", "--preset=atlantis", "--out=-"});
  EXPECT_EQ(result.code, kExitFailure);
  EXPECT_NE(result.err.find("atlantis"), std::string::npos);
}

TEST(CliReplay, RejectsBadKnobs) {
  EXPECT_EQ(run_cli({"replay", "--shards=0"}).code, kExitUsage);
  EXPECT_EQ(run_cli({"replay", "--batch=0"}).code, kExitUsage);
  EXPECT_EQ(run_cli({"replay", "--rate=-1"}).code, kExitUsage);
  EXPECT_EQ(run_cli({"replay", "--no-such-flag"}).code, kExitUsage);
  const auto bad_engine = run_cli({"replay", "--engine=turbo"});
  EXPECT_EQ(bad_engine.code, kExitUsage);
  EXPECT_NE(bad_engine.err.find("unknown engine mode"), std::string::npos);
  EXPECT_EQ(run_cli({"replay", "--loop-slack=-1"}).code, kExitUsage);
  EXPECT_EQ(run_cli({"replay", "--loop-recheck=-1"}).code, kExitUsage);
  // The drain budget paces batch drains; the loop engine's analogue is
  // --loop-slack, so combining them is a misconfiguration.
  EXPECT_EQ(run_cli({"replay", "--drain-budget=2"}).code, kExitUsage);
  EXPECT_EQ(
      run_cli({"replay", "--engine=batch", "--drain-budget=2", "--shards=0"})
          .code,
      kExitUsage);
}

TEST(CliReplay, LoopAndBatchEnginesPublishIdenticalDecisions) {
  // The loop-vs-batch determinism gate, CLI-shaped: the default loop
  // engine and the micro-batch oracle must publish the same per-user
  // decisions (cheap-path counters like searches legitimately differ).
  const auto loop = run_cli({"replay", "--preset=small", "--scale=0.05",
                             "--users=8", "--days=6", "--seed=3",
                             "--shards=3"});
  ASSERT_EQ(loop.code, kExitOk) << loop.err;
  const auto batch = run_cli({"replay", "--preset=small", "--scale=0.05",
                              "--users=8", "--days=6", "--seed=3",
                              "--shards=3", "--engine=batch", "--batch=128"});
  ASSERT_EQ(batch.code, kExitOk) << batch.err;

  const report::Json a = report::Json::parse(loop.out);
  const report::Json b = report::Json::parse(batch.out);
  EXPECT_EQ(a.find("stream")->string_or("engine", ""), "loop");
  EXPECT_EQ(b.find("stream")->string_or("engine", ""), "batch");
  // Both engines verified against the batch evaluators in-process too.
  ASSERT_NE(a.find("replay")->find("batch_match"), nullptr);
  // Final per-USER decisions are the determinism contract.  Per-event
  // exposure tallies count each event against the decision in force when
  // it arrived, so they drift with the loop's slack/recheck cadence.
  const auto* loop_decisions = a.find("replay")->find("decisions");
  const auto* batch_decisions = b.find("replay")->find("decisions");
  EXPECT_EQ(loop_decisions->int_or("exposed_users", -1),
            batch_decisions->int_or("exposed_users", -2));
  EXPECT_EQ(loop_decisions->int_or("protected_users", -1),
            batch_decisions->int_or("protected_users", -2));
  const auto& loop_users = a.find("per_user")->items();
  const auto& batch_users = b.find("per_user")->items();
  ASSERT_EQ(loop_users.size(), batch_users.size());
  for (std::size_t i = 0; i < loop_users.size(); ++i) {
    EXPECT_EQ(loop_users[i].string_or("user", "a"),
              batch_users[i].string_or("user", "b"));
    EXPECT_EQ(loop_users[i].string_or("decision", "a"),
              batch_users[i].string_or("decision", "b"));
    EXPECT_EQ(loop_users[i].string_or("winner", "a"),
              batch_users[i].string_or("winner", "b"));
    EXPECT_EQ(loop_users[i].int_or("events", -1),
              batch_users[i].int_or("events", -2));
  }
}

TEST(CliReplay, RejectsInconsistentCheckpointFlags) {
  // Every checkpoint/restore misconfiguration is a typed usage failure
  // (exit 2), reported before any replay work starts.
  const auto restore_without_dir = run_cli({"replay", "--restore"});
  EXPECT_EQ(restore_without_dir.code, kExitUsage);
  EXPECT_NE(restore_without_dir.err.find("--checkpoint-dir"),
            std::string::npos);

  EXPECT_EQ(run_cli({"replay", "--checkpoint-every=-1"}).code, kExitUsage);
  EXPECT_EQ(run_cli({"replay", "--checkpoint-every=100"}).code, kExitUsage);

  const auto missing_dir =
      run_cli({"replay", "--restore",
               "--checkpoint-dir=/no/such/checkpoint/dir"});
  EXPECT_EQ(missing_dir.code, kExitUsage);
  EXPECT_NE(missing_dir.err.find("does not exist"), std::string::npos);

  // An existing directory with no usable snapshot inside: still exit 2
  // (SnapshotError is UsageError-shaped), never a crash.
  const std::string empty_dir =
      std::string(::testing::TempDir()) + "mood_cli_empty_ckpt";
  std::filesystem::create_directories(empty_dir);
  const auto empty = run_cli(
      {"replay", "--preset=small", "--scale=0.05", "--users=6", "--days=4",
       "--restore", "--checkpoint-dir=" + empty_dir});
  EXPECT_EQ(empty.code, kExitUsage);
  EXPECT_NE(empty.err.find("no usable snapshot"), std::string::npos);
}

TEST(CliReplay, CheckpointThenRestoreReproducesTheRunExactly) {
  // The restore drill, in-process: a checkpointed replay, then a --restore
  // replay resuming from its newest snapshot. Decisions, per-user state
  // and the cost counters must be byte-identical; only timings and the
  // checkpoint block may differ.
  const std::string dir =
      std::string(::testing::TempDir()) + "mood_cli_ckpt";
  std::filesystem::remove_all(dir);

  auto straight = run_cli({"replay", "--preset=small", "--scale=0.05",
                           "--users=8", "--days=6", "--seed=3", "--shards=3",
                           "--batch=128"});
  ASSERT_EQ(straight.code, kExitOk) << straight.err;

  auto checkpointed = run_cli(
      {"replay", "--preset=small", "--scale=0.05", "--users=8", "--days=6",
       "--seed=3", "--shards=3", "--batch=128",
       "--checkpoint-dir=" + dir, "--checkpoint-every=256"});
  ASSERT_EQ(checkpointed.code, kExitOk) << checkpointed.err;

  auto restored = run_cli(
      {"replay", "--preset=small", "--scale=0.05", "--users=8", "--days=6",
       "--seed=3", "--shards=3", "--batch=128", "--restore",
       "--checkpoint-dir=" + dir});
  ASSERT_EQ(restored.code, kExitOk) << restored.err;
  EXPECT_NE(restored.err.find("restored checkpoint at position"),
            std::string::npos);

  const report::Json want = report::Json::parse(straight.out);
  for (const auto* result : {&checkpointed, &restored}) {
    const report::Json got = report::Json::parse(result->out);
    ASSERT_NE(got.find("per_user"), nullptr);
    EXPECT_EQ(*got.find("per_user"), *want.find("per_user"));
    const report::Json* replay_got = got.find("replay");
    const report::Json* replay_want = want.find("replay");
    ASSERT_NE(replay_got, nullptr);
    EXPECT_EQ(*replay_got->find("decisions"), *replay_want->find("decisions"));
    EXPECT_EQ(*replay_got->find("cost"), *replay_want->find("cost"));
    EXPECT_EQ(*replay_got->find("events"), *replay_want->find("events"));
    EXPECT_EQ(*replay_got->find("batches"), *replay_want->find("batches"));
  }

  // The restored run reports its resume position in the checkpoint block,
  // and it matches a batch boundary of the configured cadence.
  const report::Json restored_doc = report::Json::parse(restored.out);
  const report::Json* checkpoint =
      restored_doc.find("replay")->find("checkpoint");
  ASSERT_NE(checkpoint, nullptr);
  const std::int64_t resume = checkpoint->int_or("resume_events", 0);
  EXPECT_GT(resume, 0);
  EXPECT_EQ(resume % 128, 0);

  // A fingerprint mismatch (different seed) is refused with exit 2.
  const auto mismatched = run_cli(
      {"replay", "--preset=small", "--scale=0.05", "--users=8", "--days=6",
       "--seed=4", "--shards=3", "--batch=128", "--restore",
       "--checkpoint-dir=" + dir});
  EXPECT_EQ(mismatched.code, kExitUsage);
  EXPECT_NE(mismatched.err.find("different replay"), std::string::npos);
}

TEST(CliReplay, RejectsBadTelemetryFlags) {
  const auto bad_level = run_cli({"replay", "--log-level=loud"});
  EXPECT_EQ(bad_level.code, kExitUsage);
  EXPECT_NE(bad_level.err.find("--log-level"), std::string::npos);
  EXPECT_EQ(run_cli({"replay", "--metrics-every=-1"}).code, kExitUsage);
  // A periodic cadence without a destination is a misconfiguration.
  const auto no_sink = run_cli({"replay", "--metrics-every=100"});
  EXPECT_EQ(no_sink.code, kExitUsage);
  EXPECT_NE(no_sink.err.find("--metrics-out"), std::string::npos);
}

TEST(CliReplay, TelemetrySinksWriteMetricsAndTraceArtifacts) {
  // End-to-end telemetry drill: one replay writing the stream document,
  // the exposition and the Chrome trace; then `mood metrics` renders
  // both machine formats as tables.
  const std::string dir =
      std::string(::testing::TempDir()) + "mood_cli_telemetry";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string metrics_path = dir + "/metrics.prom";
  const std::string trace_path = dir + "/trace.json";
  const std::string stream_path = dir + "/stream.json";

  const auto replayed = run_cli(
      {"replay", "--preset=small", "--scale=0.05", "--users=8", "--days=6",
       "--seed=3", "--shards=3", "--batch=128", "--out=" + stream_path,
       "--metrics-out=" + metrics_path, "--trace-out=" + trace_path,
       "--log-level=warn"});
  ASSERT_EQ(replayed.code, kExitOk) << replayed.err;
  EXPECT_NE(replayed.err.find("trace spans"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(metrics_path + ".tmp"));

  // The stream document carries the latency histogram block, consistent
  // with itself and with the exposition.
  std::ifstream stream_file(stream_path);
  std::stringstream stream_text;
  stream_text << stream_file.rdbuf();
  const report::Json document = report::Json::parse(stream_text.str());
  const report::Json* latency = document.find("replay")->find("latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->int_or("count", -1),
            document.find("replay")->int_or("events", -2));
  EXPECT_EQ(latency->string_or("unit", ""), "seconds");
  const report::Json* per_shard = latency->find("per_shard");
  ASSERT_NE(per_shard, nullptr);
  ASSERT_EQ(per_shard->items().size(), 3u);
  std::int64_t shard_total = 0;
  for (const auto& shard : per_shard->items()) {
    shard_total += shard.int_or("count", 0);
  }
  EXPECT_EQ(shard_total, latency->int_or("count", -1));

  // The trace is valid JSON with trace_event rows.
  std::ifstream trace_file(trace_path);
  std::stringstream trace_text;
  trace_text << trace_file.rdbuf();
  const report::Json trace = report::Json::parse(trace_text.str());
  ASSERT_NE(trace.find("traceEvents"), nullptr);
  EXPECT_FALSE(trace.find("traceEvents")->items().empty());

  // `mood metrics` renders both the exposition and the stream document.
  const auto exposition = run_cli({"metrics", metrics_path});
  ASSERT_EQ(exposition.code, kExitOk) << exposition.err;
  EXPECT_NE(exposition.out.find("mood_stream_events_total"),
            std::string::npos);
  EXPECT_NE(exposition.out.find("mood_replay_latency_seconds_p95"),
            std::string::npos);
  const auto summary = run_cli({"metrics", stream_path});
  ASSERT_EQ(summary.code, kExitOk) << summary.err;
  EXPECT_NE(summary.out.find("latency_p50_ms"), std::string::npos);
  EXPECT_NE(summary.out.find("latency_shard0_events"), std::string::npos);
}

TEST(CliMetrics, RejectsMissingAndUnsupportedInputs) {
  EXPECT_EQ(run_cli({"metrics"}).code, kExitUsage);
  EXPECT_EQ(run_cli({"metrics", "/no/such/metrics.prom"}).code,
            kExitFailure);
  // A JSON document of the wrong schema is a typed usage error.
  const std::string path =
      std::string(::testing::TempDir()) + "mood_cli_wrong_schema.json";
  std::ofstream(path) << "{\"schema\": \"mood-result/1\"}";
  const auto wrong = run_cli({"metrics", path});
  EXPECT_EQ(wrong.code, kExitUsage);
  EXPECT_NE(wrong.err.find("mood-stream/1"), std::string::npos);
}

TEST(CliReport, NoInputsIsUsageError) {
  EXPECT_EQ(run_cli({"report"}).code, kExitUsage);
}

TEST(CliReport, MissingFileIsRuntimeFailure) {
  const auto result = run_cli({"report", "/no/such/file.json"});
  EXPECT_EQ(result.code, kExitFailure);
}

TEST(CliReport, BadFormatIsUsageError) {
  EXPECT_EQ(run_cli({"report", "x.json", "--format=xml"}).code, kExitUsage);
}

TEST(CliReport, DispatchesBenchAndStreamSchemas) {
  const std::string dir = ::testing::TempDir();
  const std::string bench_path = dir + "mood_cli_test_bench.json";
  const std::string stream_path = dir + "mood_cli_test_stream.json";

  report::Json bench = report::Json::object();
  bench["schema"] = "mood-bench/1";
  report::Json bench_meta = report::Json::object();
  bench_meta["dataset"] = "smoke";
  bench["meta"] = std::move(bench_meta);
  report::Json cases = report::Json::array();
  report::Json one = report::Json::object();
  one["name"] = "ap-attack-reidentify";
  one["queries"] = 42;
  one["reference_seconds"] = 1.5;
  one["optimized_seconds"] = 0.1;
  one["speedup"] = 15.0;
  one["agreement"] = true;
  cases.push_back(std::move(one));
  bench["benchmarks"] = std::move(cases);
  report::write_json_file(bench_path, bench);

  report::Json stream = report::Json::object();
  stream["schema"] = "mood-stream/1";
  report::Json stream_meta = report::Json::object();
  stream_meta["dataset"] = "smoke";
  stream["meta"] = std::move(stream_meta);
  report::Json replay = report::Json::object();
  replay["events"] = 1000;
  replay["batches"] = 4;
  replay["users"] = 7;
  replay["wall_seconds"] = 0.5;
  replay["events_per_second"] = 2000.0;
  stream["replay"] = std::move(replay);
  report::write_json_file(stream_path, stream);

  // Table format renders one schema-appropriate block per file.
  const auto table = run_cli({"report", bench_path, stream_path});
  ASSERT_EQ(table.code, kExitOk) << table.err;
  EXPECT_NE(table.out.find("ap-attack-reidentify"), std::string::npos);
  EXPECT_NE(table.out.find("mood-bench/1"), std::string::npos);
  EXPECT_NE(table.out.find("events_per_second"), std::string::npos);
  EXPECT_NE(table.out.find("mood-stream/1"), std::string::npos);

  // JSON merging accepts any known schema.
  const auto merged = run_cli({"report", bench_path, stream_path,
                               "--format=json"});
  ASSERT_EQ(merged.code, kExitOk) << merged.err;
  const report::Json doc = report::Json::parse(merged.out);
  EXPECT_EQ(doc.string_or("schema", ""), "mood-report/1");
  EXPECT_EQ(doc.find("runs")->size(), 2u);

  // CSV output stays a uniform row shape: non-result schemas are a typed
  // usage error, not silently mangled rows.
  EXPECT_EQ(run_cli({"report", stream_path, "--format=csv"}).code,
            kExitUsage);
}

TEST(CliReport, UnknownSchemaIsUsageError) {
  const std::string path =
      std::string(::testing::TempDir()) + "mood_cli_test_unknown.json";
  report::Json doc = report::Json::object();
  doc["schema"] = "mood-quux/9";
  report::write_json_file(path, doc);
  const auto result = run_cli({"report", path});
  EXPECT_EQ(result.code, kExitUsage);
  EXPECT_NE(result.err.find("unsupported schema"), std::string::npos);
}

// --------------------------------------------------------- end-to-end --

TEST(CliPipeline, SimulateEvaluateReport) {
  const std::string dir = ::testing::TempDir();
  const std::string csv = dir + "mood_cli_test_dataset.csv";
  const std::string json = dir + "mood_cli_test_result.json";

  // simulate: small city so the whole pipeline stays fast in Debug.
  auto simulate = run_cli({"simulate", "--preset=privamov", "--scale=0.05",
                           "--users=8", "--days=6", "--seed=3",
                           "--out=" + csv});
  ASSERT_EQ(simulate.code, kExitOk) << simulate.err;
  // The summary on stdout is valid JSON.
  const report::Json summary = report::Json::parse(simulate.out);
  EXPECT_EQ(summary.int_or("users", 0), 8);

  // evaluate: cheap strategies only.
  auto evaluate = run_cli({"evaluate", "--input=" + csv, "--name=e2e",
                           "--strategies=no-lppm,geoi", "--min-records=4",
                           "--seed=3", "--out=" + json});
  ASSERT_EQ(evaluate.code, kExitOk) << evaluate.err;

  std::ifstream in(json);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const report::Json document = report::Json::parse(buffer.str());
  EXPECT_EQ(document.string_or("schema", ""), "mood-result/1");
  const report::Json* strategies = document.find("strategies");
  ASSERT_NE(strategies, nullptr);
  ASSERT_EQ(strategies->size(), 2u);
  for (const auto& strategy : strategies->items()) {
    EXPECT_NE(strategy.find("data_loss"), nullptr);
    EXPECT_NE(strategy.find("distortion_bands"), nullptr);
    EXPECT_NE(strategy.find("per_user"), nullptr);
  }
  EXPECT_EQ(strategies->items()[0].string_or("strategy", ""), "no-LPPM");

  // report: the table mentions both strategies and the dataset name.
  auto report_run = run_cli({"report", json});
  ASSERT_EQ(report_run.code, kExitOk) << report_run.err;
  EXPECT_NE(report_run.out.find("no-LPPM"), std::string::npos);
  EXPECT_NE(report_run.out.find("GeoI"), std::string::npos);
  EXPECT_NE(report_run.out.find("e2e"), std::string::npos);

  // report --format=json wraps the document unchanged.
  auto merged = run_cli({"report", json, "--format=json"});
  ASSERT_EQ(merged.code, kExitOk);
  const report::Json bundle = report::Json::parse(merged.out);
  EXPECT_EQ(bundle.string_or("schema", ""), "mood-report/1");
  ASSERT_EQ(bundle.find("runs")->size(), 1u);
  EXPECT_EQ(*bundle.find("runs")->items()[0].find("report"), document);
}

TEST(CliReplay, ReplaysAndVerifiesAgainstBatch) {
  // End-to-end `mood replay` on a tiny population: the gateway replays the
  // stream, the built-in verification compares the final decisions to the
  // batch evaluators (exit 1 on divergence), and the emitted document is a
  // well-formed mood-stream/1.
  auto replay = run_cli({"replay", "--preset=small", "--scale=0.05",
                         "--users=8", "--days=6", "--seed=3", "--shards=3",
                         "--batch=128"});
  ASSERT_EQ(replay.code, kExitOk) << replay.err;
  const report::Json document = report::Json::parse(replay.out);
  EXPECT_EQ(document.string_or("schema", ""), "mood-stream/1");

  const report::Json* replay_doc = document.find("replay");
  ASSERT_NE(replay_doc, nullptr);
  EXPECT_GT(replay_doc->int_or("events", 0), 0);
  const report::Json* match = replay_doc->find("batch_match");
  ASSERT_NE(match, nullptr);
  EXPECT_TRUE(match->is_bool() && match->as_bool());
  const report::Json* latency = replay_doc->find("latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->number_or("p99", -1.0), latency->number_or("p50", 0.0));

  const report::Json* per_user = document.find("per_user");
  ASSERT_NE(per_user, nullptr);
  EXPECT_EQ(static_cast<std::int64_t>(per_user->size()),
            replay_doc->int_or("users", -1));
  for (const auto& user : per_user->items()) {
    const std::string decision = user.string_or("decision", "");
    EXPECT_TRUE(decision == "expose" || decision == "protect") << decision;
  }

  // A lossy window configuration skips verification (batch_match: null)
  // but still succeeds.
  auto windowed = run_cli({"replay", "--preset=small", "--scale=0.05",
                           "--users=8", "--days=6", "--seed=3",
                           "--window-hours=24", "--max-points=64"});
  ASSERT_EQ(windowed.code, kExitOk) << windowed.err;
  const report::Json windowed_doc = report::Json::parse(windowed.out);
  const report::Json* windowed_match =
      windowed_doc.find("replay")->find("batch_match");
  ASSERT_NE(windowed_match, nullptr);
  EXPECT_TRUE(windowed_match->is_null());
}

}  // namespace
}  // namespace mood::cli
