// Unit tests for the extension LPPMs (SpatialCloaking, TimeDistortion,
// Promesse) and the application-level utility metrics (cell coverage,
// POI preservation).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "clustering/poi_extraction.h"
#include "geo/cell_grid.h"
#include "lppm/promesse.h"
#include "lppm/spatial_cloaking.h"
#include "lppm/time_distortion.h"
#include "metrics/coverage.h"
#include "metrics/distortion.h"
#include "support/error.h"
#include "test_helpers.h"

namespace mood::lppm {
namespace {

using geo::GeoPoint;
using mobility::kHour;
using mobility::kMinute;
using mobility::Trace;
using support::RngStream;
using testing::dwell;
using testing::rec;
using testing::trace_of;

const GeoPoint kHome{45.7640, 4.8357};
const GeoPoint kWork{45.7800, 4.8700};

Trace commute_trace() {
  std::vector<mobility::Record> records = dwell(kHome, 0, 30);
  // Commute leg sampled every 2 minutes.
  for (int i = 1; i <= 10; ++i) {
    const double f = i / 11.0;
    records.push_back(rec(kHome.lat + f * (kWork.lat - kHome.lat),
                          kHome.lon + f * (kWork.lon - kHome.lon),
                          150 * kMinute + i * 2 * kMinute));
  }
  auto w = dwell(kWork, 4 * kHour, 30);
  records.insert(records.end(), w.begin(), w.end());
  return Trace("u", std::move(records));
}

// ------------------------------------------------------- SpatialCloaking --

TEST(SpatialCloaking, SnapsEveryRecordToCellCenter) {
  const geo::CellGrid grid(geo::LocalProjection(kHome), 800.0);
  const SpatialCloaking cloak(grid);
  const Trace in = commute_trace();
  const Trace out = cloak.apply(in, RngStream(1));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out.at(i).time, in.at(i).time);
    const auto cell = grid.cell_of(in.at(i).position);
    EXPECT_NEAR(
        geo::haversine_m(out.at(i).position, grid.cell_center(cell)), 0.0,
        0.01);
    // Displacement bounded by half the cell diagonal.
    EXPECT_LE(geo::haversine_m(out.at(i).position, in.at(i).position),
              800.0 * std::numbers::sqrt2 / 2.0 + 0.01);
  }
}

TEST(SpatialCloaking, IsIdempotent) {
  const geo::CellGrid grid(geo::LocalProjection(kHome), 800.0);
  const SpatialCloaking cloak(grid);
  const Trace once = cloak.apply(commute_trace(), RngStream(1));
  const Trace twice = cloak.apply(once, RngStream(2));
  EXPECT_EQ(once, twice);
}

TEST(SpatialCloaking, CollapsesCoLocatedUsers) {
  // Two users in the same cell become positionally identical — the
  // cell-level k-anonymity effect.
  const geo::CellGrid grid(geo::LocalProjection(kHome), 800.0);
  const SpatialCloaking cloak(grid);
  const Trace a = trace_of("a", {dwell(kHome, 0, 5)});
  const Trace b = trace_of(
      "b", {dwell(geo::destination(kHome, 0.3, 100.0), 0, 5)});
  const Trace ca = cloak.apply(a, RngStream(1));
  const Trace cb = cloak.apply(b, RngStream(1));
  EXPECT_EQ(ca.at(0).position, cb.at(0).position);
}

// -------------------------------------------------------- TimeDistortion --

TEST(TimeDistortion, KeepsPositionsExactly) {
  const TimeDistortion distort(2 * kHour, 120.0);
  const Trace in = commute_trace();
  const Trace out = distort.apply(in, RngStream(3));
  ASSERT_EQ(out.size(), in.size());
  std::multiset<std::pair<double, double>> in_positions, out_positions;
  for (const auto& r : in.records()) {
    in_positions.insert({r.position.lat, r.position.lon});
  }
  for (const auto& r : out.records()) {
    out_positions.insert({r.position.lat, r.position.lon});
  }
  EXPECT_EQ(in_positions, out_positions);
}

TEST(TimeDistortion, ShiftsAreBoundedByMaxShift) {
  const mobility::Timestamp bound = kHour;
  const TimeDistortion distort(bound, 300.0);
  const Trace in = commute_trace();
  const Trace out = distort.apply(in, RngStream(4));
  // Output is re-sorted; compare the sorted sets of timestamps via the
  // min/max envelope (every output time within [min-in - bound,
  // max-in + bound]).
  EXPECT_GE(out.front().time, in.front().time - bound);
  EXPECT_LE(out.back().time, in.back().time + bound);
}

TEST(TimeDistortion, ActuallyMovesTimestamps) {
  const TimeDistortion distort(2 * kHour, 120.0);
  const Trace in = commute_trace();
  const Trace out = distort.apply(in, RngStream(5));
  EXPECT_NE(in, out);
}

TEST(TimeDistortion, OutputRemainsTimeOrdered) {
  const TimeDistortion distort(2 * kHour, 600.0);
  const Trace out = distort.apply(commute_trace(), RngStream(6));
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out.at(i - 1).time, out.at(i).time);
  }
}

TEST(TimeDistortion, ValidatesParameters) {
  EXPECT_THROW(TimeDistortion(0, 10.0), support::PreconditionError);
  EXPECT_THROW(TimeDistortion(kHour, -1.0), support::PreconditionError);
}

// -------------------------------------------------------------- Promesse --

TEST(Promesse, ErasesPois) {
  const Promesse promesse(200.0);
  const Trace in = commute_trace();
  ASSERT_FALSE(clustering::extract_pois(in).empty());  // dwells exist
  const Trace out = promesse.apply(in, RngStream(7));
  EXPECT_TRUE(clustering::extract_pois(out).empty());
}

TEST(Promesse, OutputIsEvenlySpacedAlongPath) {
  const Promesse promesse(200.0);
  const Trace out = promesse.apply(commute_trace(), RngStream(8));
  ASSERT_GT(out.size(), 2u);
  // Consecutive output records (after the seed record) are one stride
  // apart along the straight commute path.
  for (std::size_t i = 2; i < out.size(); ++i) {
    EXPECT_NEAR(
        geo::haversine_m(out.at(i - 1).position, out.at(i).position), 200.0,
        5.0);
  }
}

TEST(Promesse, KeepsRouteGeometry) {
  // All resampled points lie on the home->work segment (within noise).
  const Promesse promesse(150.0);
  const Trace out = promesse.apply(commute_trace(), RngStream(9));
  for (const auto& r : out.records()) {
    // Cross-track distance from the straight line home->work stays small
    // relative to the 3.2 km leg.
    const double to_home = geo::haversine_m(r.position, kHome);
    const double to_work = geo::haversine_m(r.position, kWork);
    const double leg = geo::haversine_m(kHome, kWork);
    EXPECT_LE(to_home + to_work, leg * 1.02);
  }
}

TEST(Promesse, EmptyAndSingleRecordTraces) {
  const Promesse promesse(200.0);
  EXPECT_TRUE(promesse.apply(Trace("u", {}), RngStream(1)).empty());
  const Trace single("u", {rec(45, 5, 0)});
  EXPECT_EQ(promesse.apply(single, RngStream(1)).size(), 1u);
}

TEST(Promesse, ValidatesStride) {
  EXPECT_THROW(Promesse(0.0), support::PreconditionError);
}

}  // namespace
}  // namespace mood::lppm

namespace mood::metrics {
namespace {

using geo::GeoPoint;
using mobility::Trace;
using testing::dwell;
using testing::trace_of;

const GeoPoint kSpot{45.7640, 4.8357};

TEST(CellCoverage, IdenticalTraceScoresOne) {
  const geo::CellGrid grid(geo::LocalProjection(kSpot), 800.0);
  const Trace t = trace_of("u", {dwell(kSpot, 0, 20)});
  EXPECT_NEAR(cell_coverage_similarity(t, t, grid), 1.0, 1e-9);
}

TEST(CellCoverage, DisjointTracesScoreZero) {
  const geo::CellGrid grid(geo::LocalProjection(kSpot), 800.0);
  const Trace a = trace_of("u", {dwell(kSpot, 0, 20)});
  const Trace b = trace_of(
      "u", {dwell(geo::destination(kSpot, 0.0, 20000.0), 0, 20)});
  EXPECT_NEAR(cell_coverage_similarity(a, b, grid), 0.0, 1e-9);
}

TEST(CellCoverage, PartialOverlapInBetween) {
  const geo::CellGrid grid(geo::LocalProjection(kSpot), 800.0);
  const Trace a = trace_of("u", {dwell(kSpot, 0, 20)});
  // Half the records in the same cell, half far away.
  const Trace b = trace_of(
      "u", {dwell(kSpot, 0, 10),
            dwell(geo::destination(kSpot, 0.0, 20000.0), 7200, 10)});
  const double score = cell_coverage_similarity(a, b, grid);
  EXPECT_GT(score, 0.3);
  EXPECT_LT(score, 0.7);
}

TEST(CellCoverage, EmptyTraceScoresZero) {
  const geo::CellGrid grid(geo::LocalProjection(kSpot), 800.0);
  const Trace t = trace_of("u", {dwell(kSpot, 0, 20)});
  EXPECT_EQ(cell_coverage_similarity(t, Trace("u", {}), grid), 0.0);
  EXPECT_EQ(cell_coverage_similarity(Trace("u", {}), t, grid), 0.0);
}

TEST(PoiPreservation, IdentityPreservesEverything) {
  const Trace t = trace_of("u", {dwell(kSpot, 0, 20)});
  EXPECT_DOUBLE_EQ(poi_preservation(t, t), 1.0);
}

TEST(PoiPreservation, FarShiftPreservesNothing) {
  const Trace t = trace_of("u", {dwell(kSpot, 0, 20)});
  const Trace moved = trace_of(
      "u", {dwell(geo::destination(kSpot, 0.0, 5000.0), 0, 20)});
  EXPECT_DOUBLE_EQ(poi_preservation(t, moved), 0.0);
}

TEST(PoiPreservation, NoOriginalPoisMeansVacuouslyPreserved) {
  const Trace sparse("u", {testing::rec(45, 5, 0)});
  const Trace t = trace_of("u", {dwell(kSpot, 0, 20)});
  EXPECT_DOUBLE_EQ(poi_preservation(sparse, t), 1.0);
}

}  // namespace
}  // namespace mood::metrics
