// Unit tests for the three mobility-profile models: POI sets, Mobility
// Markov Chains and heatmaps (with Topsoe divergence).

#include <gtest/gtest.h>

#include <cmath>

#include "geo/cell_grid.h"
#include "profiles/heatmap.h"
#include "profiles/markov_profile.h"
#include "profiles/poi_profile.h"
#include "support/error.h"
#include "test_helpers.h"

namespace mood::profiles {
namespace {

using geo::GeoPoint;
using mobility::kHour;
using mobility::Trace;
using testing::dwell;
using testing::trace_of;

const GeoPoint kHome{45.7640, 4.8357};
const GeoPoint kWork{45.7800, 4.8700};
const GeoPoint kGym{45.7500, 4.8100};

Trace three_place_trace(const std::string& user = "u") {
  std::vector<mobility::Record> records = dwell(kHome, 0, 30);
  auto w = dwell(kWork, 4 * kHour, 20);
  records.insert(records.end(), w.begin(), w.end());
  auto g = dwell(kGym, 8 * kHour, 14);
  records.insert(records.end(), g.begin(), g.end());
  auto h = dwell(kHome, 12 * kHour, 30);
  records.insert(records.end(), h.begin(), h.end());
  return Trace(user, std::move(records));
}

// ----------------------------------------------------------- PoiProfile --

TEST(PoiProfile, ExtractsMergedPlaces) {
  const auto profile = PoiProfile::from_trace(three_place_trace());
  EXPECT_EQ(profile.size(), 3u);  // home merged across two dwells
}

TEST(PoiProfile, EmptyTraceGivesEmptyProfile) {
  EXPECT_TRUE(PoiProfile::from_trace(Trace("u", {})).empty());
}

TEST(PoiProfileDistance, ZeroForIdenticalProfiles) {
  const auto p = PoiProfile::from_trace(three_place_trace());
  EXPECT_NEAR(poi_profile_distance(p, p), 0.0, 1e-9);
}

TEST(PoiProfileDistance, InfiniteWhenEitherEmpty) {
  const auto p = PoiProfile::from_trace(three_place_trace());
  const PoiProfile empty;
  EXPECT_TRUE(std::isinf(poi_profile_distance(p, empty)));
  EXPECT_TRUE(std::isinf(poi_profile_distance(empty, p)));
}

TEST(PoiProfileDistance, ExactForSinglePoiProfiles) {
  const auto here =
      PoiProfile::from_trace(trace_of("a", {dwell(kHome, 0, 20)}));
  const auto there = PoiProfile::from_trace(trace_of(
      "b", {dwell(geo::destination(kHome, 0.0, 5000.0), 0, 20)}));
  EXPECT_NEAR(poi_profile_distance(here, there), 5000.0, 10.0);
}

TEST(PoiProfileDistance, MonotoneInShift) {
  // With multiple POIs, nearest-match may cross-pair, but the distance must
  // still grow as the whole layout moves farther away.
  const auto here = PoiProfile::from_trace(three_place_trace());
  auto shifted_by = [&](double metres) {
    std::vector<clustering::Poi> moved;
    for (const auto& poi : here.pois()) {
      clustering::Poi p = poi;
      p.center = geo::destination(p.center, 0.0, metres);
      moved.push_back(p);
    }
    return PoiProfile(std::move(moved));
  };
  const double near = poi_profile_distance(here, shifted_by(1000.0));
  const double mid = poi_profile_distance(here, shifted_by(5000.0));
  const double far = poi_profile_distance(here, shifted_by(25000.0));
  EXPECT_LT(near, mid);
  EXPECT_LT(mid, far);
  EXPECT_NEAR(far, 25000.0, 1500.0);  // cross-matching vanishes at range
}

// -------------------------------------------------------- MarkovProfile --

TEST(MarkovProfile, WeightsSumToOneAndRanked) {
  const auto mmc = MarkovProfile::from_trace(three_place_trace());
  ASSERT_EQ(mmc.size(), 3u);
  double total = 0.0;
  for (const auto& s : mmc.states()) total += s.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Ranked by decreasing weight: home (60 recs) first.
  EXPECT_GE(mmc.states()[0].weight, mmc.states()[1].weight);
  EXPECT_GE(mmc.states()[1].weight, mmc.states()[2].weight);
  EXPECT_NEAR(geo::haversine_m(mmc.states()[0].center, kHome), 0.0, 10.0);
}

TEST(MarkovProfile, TransitionsAreRowStochastic) {
  const auto mmc = MarkovProfile::from_trace(three_place_trace());
  for (std::size_t i = 0; i < mmc.size(); ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < mmc.size(); ++j) row += mmc.transition(i, j);
    EXPECT_NEAR(row, 1.0, 1e-9) << "row " << i;
  }
}

TEST(MarkovProfile, ObservedTransitionsHaveMass) {
  // Visits: home -> work -> gym -> home. home is rank 0.
  const auto mmc = MarkovProfile::from_trace(three_place_trace());
  // work (rank 1, 20 recs) -> gym (rank 2, 14 recs) was observed once and
  // is work's only outgoing edge.
  EXPECT_NEAR(mmc.transition(1, 2), 1.0, 1e-9);
}

TEST(MarkovProfile, EmptyTraceGivesEmptyChain) {
  EXPECT_TRUE(MarkovProfile::from_trace(Trace("u", {})).empty());
}

TEST(MarkovProfile, TransitionGuardsRange) {
  const auto mmc = MarkovProfile::from_trace(three_place_trace());
  EXPECT_THROW(static_cast<void>(mmc.transition(0, 99)),
               support::PreconditionError);
}

TEST(StatsProx, IdenticalChainsNearZero) {
  const auto a = MarkovProfile::from_trace(three_place_trace("a"));
  const auto b = MarkovProfile::from_trace(three_place_trace("b"));
  EXPECT_NEAR(stats_prox_distance(a, b), 0.0, 1e-6);
}

TEST(StatsProx, InfiniteForEmptyChain) {
  const auto a = MarkovProfile::from_trace(three_place_trace());
  const MarkovProfile empty;
  EXPECT_TRUE(std::isinf(stats_prox_distance(a, empty)));
}

TEST(StatsProx, GrowsWithGeographicShift) {
  const auto a = MarkovProfile::from_trace(three_place_trace());
  // Same behaviour 10 km away must be farther than 1 km away.
  auto shifted = [&](double metres) {
    const Trace base = three_place_trace();
    std::vector<mobility::Record> records;
    for (const auto& r : base.records()) {
      records.push_back(mobility::Record{
          geo::destination(r.position, 0.0, metres), r.time});
    }
    return MarkovProfile::from_trace(Trace("s", std::move(records)));
  };
  const double near = stats_prox_distance(a, shifted(1000.0));
  const double far = stats_prox_distance(a, shifted(10000.0));
  EXPECT_LT(near, far);
  EXPECT_GT(near, 0.0);
}

TEST(StatsProx, SymmetricInItsArguments) {
  const auto a = MarkovProfile::from_trace(three_place_trace());
  const auto b = MarkovProfile::from_trace(
      trace_of("b", {dwell(kWork, 0, 20), dwell(kGym, 4 * kHour, 30)}));
  EXPECT_NEAR(stats_prox_distance(a, b), stats_prox_distance(b, a), 1e-9);
}

TEST(StatsProx, ValidatesScale) {
  const auto a = MarkovProfile::from_trace(three_place_trace());
  EXPECT_THROW(stats_prox_distance(a, a, 0.0), support::PreconditionError);
}

// -------------------------------------------------------------- Heatmap --

class HeatmapTest : public ::testing::Test {
 protected:
  geo::CellGrid grid_{geo::LocalProjection(kHome), 800.0};
};

TEST_F(HeatmapTest, CountsRecordsPerCell) {
  const auto map = Heatmap::from_trace(three_place_trace(), grid_);
  EXPECT_GT(map.cell_count(), 1u);
  EXPECT_DOUBLE_EQ(map.total(), 94.0);  // 30+20+14+30 records
  const auto home_cell = grid_.cell_of(kHome);
  EXPECT_NEAR(map.probability(home_cell), 60.0 / 94.0, 1e-9);
}

TEST_F(HeatmapTest, ProbabilityOfUnseenCellIsZero) {
  const auto map = Heatmap::from_trace(three_place_trace(), grid_);
  EXPECT_DOUBLE_EQ(map.probability(geo::CellIndex{999, 999}), 0.0);
}

TEST_F(HeatmapTest, RankedCellsAreDescendingAndDeterministic) {
  const auto map = Heatmap::from_trace(three_place_trace(), grid_);
  const auto ranked = map.ranked_cells();
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].second, ranked[i].second);
  }
  EXPECT_EQ(ranked, map.ranked_cells());  // stable across calls
  EXPECT_EQ(ranked[0].first, grid_.cell_of(kHome));
}

TEST_F(HeatmapTest, AddRejectsNegative) {
  Heatmap map;
  EXPECT_THROW(map.add(geo::CellIndex{0, 0}, -1.0),
               support::PreconditionError);
}

TEST_F(HeatmapTest, TopsoeZeroForIdenticalMaps) {
  const auto map = Heatmap::from_trace(three_place_trace(), grid_);
  EXPECT_NEAR(topsoe_divergence(map, map), 0.0, 1e-12);
}

TEST_F(HeatmapTest, TopsoeSymmetric) {
  const auto a = Heatmap::from_trace(three_place_trace(), grid_);
  const auto b = Heatmap::from_trace(
      trace_of("b", {dwell(kGym, 0, 40), dwell(kWork, 5 * kHour, 10)}),
      grid_);
  EXPECT_NEAR(topsoe_divergence(a, b), topsoe_divergence(b, a), 1e-12);
}

TEST_F(HeatmapTest, TopsoeMaxedForDisjointSupports) {
  Heatmap a, b;
  a.add(geo::CellIndex{0, 0}, 10.0);
  b.add(geo::CellIndex{5, 5}, 10.0);
  EXPECT_NEAR(topsoe_divergence(a, b), 2.0 * std::log(2.0), 1e-12);
}

TEST_F(HeatmapTest, TopsoeBoundedAndMonotoneInOverlap) {
  Heatmap a;
  a.add(geo::CellIndex{0, 0}, 5.0);
  a.add(geo::CellIndex{1, 0}, 5.0);
  Heatmap similar;  // 80% overlap
  similar.add(geo::CellIndex{0, 0}, 4.0);
  similar.add(geo::CellIndex{1, 0}, 4.0);
  similar.add(geo::CellIndex{2, 0}, 2.0);
  Heatmap different;  // no overlap
  different.add(geo::CellIndex{7, 7}, 10.0);
  const double d_similar = topsoe_divergence(a, similar);
  const double d_different = topsoe_divergence(a, different);
  EXPECT_LT(d_similar, d_different);
  EXPECT_LE(d_different, 2.0 * std::log(2.0) + 1e-12);
  EXPECT_GE(d_similar, 0.0);
}

TEST_F(HeatmapTest, TopsoeInfiniteForEmptyMap) {
  const Heatmap empty;
  Heatmap a;
  a.add(geo::CellIndex{0, 0});
  EXPECT_TRUE(std::isinf(topsoe_divergence(a, empty)));
  EXPECT_TRUE(std::isinf(topsoe_divergence(empty, a)));
}

// ------------------------------------------- CompiledHeatmap updates --

void expect_bit_identical(const CompiledHeatmap& a, const CompiledHeatmap& b) {
  ASSERT_EQ(a.cell_count(), b.cell_count());
  for (std::size_t c = 0; c < a.cell_count(); ++c) {
    EXPECT_EQ(a.cells()[c].cell, b.cells()[c].cell);
    EXPECT_EQ(a.cells()[c].probability, b.cells()[c].probability);
    EXPECT_EQ(a.cells()[c].self_term, b.cells()[c].self_term);
    EXPECT_EQ(a.cells()[c].solo_term, b.cells()[c].solo_term);
  }
}

TEST_F(HeatmapTest, IncrementalCompileEqualsFromTrace) {
  const auto trace = three_place_trace();
  expect_bit_identical(CompiledHeatmap::incremental(trace, grid_),
                       CompiledHeatmap::from_trace(trace, grid_));
  EXPECT_TRUE(CompiledHeatmap::incremental(trace, grid_).updatable());
  EXPECT_FALSE(CompiledHeatmap::from_trace(trace, grid_).updatable());
}

TEST_F(HeatmapTest, ApplyUpdateFoldsArrivalsExactly) {
  const auto trace = three_place_trace();
  const auto& records = trace.records();
  auto map = CompiledHeatmap::incremental(Trace("u", {}), grid_);
  EXPECT_TRUE(map.empty());
  // Fold in two uneven chunks; compare against one-shot compiles of the
  // prefixes.
  const std::size_t cut = 37;
  map.apply_update({records.begin(), records.begin() + cut}, {}, grid_);
  expect_bit_identical(
      map, CompiledHeatmap::from_trace(
               Trace("u", {records.begin(), records.begin() + cut}), grid_));
  map.apply_update({records.begin() + cut, records.end()}, {}, grid_);
  expect_bit_identical(map, CompiledHeatmap::from_trace(trace, grid_));
}

TEST_F(HeatmapTest, ApplyUpdateRemovesExpirationsExactly) {
  const auto trace = three_place_trace();
  const auto& records = trace.records();
  auto map = CompiledHeatmap::incremental(trace, grid_);
  // Expire the first 40 records (the whole home dwell plus part of work).
  const std::vector<mobility::Record> gone(records.begin(),
                                           records.begin() + 40);
  map.apply_update({}, gone, grid_);
  expect_bit_identical(
      map, CompiledHeatmap::from_trace(
               Trace("u", {records.begin() + 40, records.end()}), grid_));
  // Removing everything empties the heatmap cleanly.
  map.apply_update({}, {records.begin() + 40, records.end()}, grid_);
  EXPECT_TRUE(map.empty());
}

TEST_F(HeatmapTest, ApplyUpdateGuardsItsPreconditions) {
  const auto trace = three_place_trace();
  auto frozen = CompiledHeatmap::from_trace(trace, grid_);
  EXPECT_THROW(frozen.apply_update({trace.records().front()}, {}, grid_),
               support::PreconditionError);
  auto map = CompiledHeatmap::incremental(Trace("u", {}), grid_);
  // Removing a record that was never added must fail loudly, not corrupt
  // the counts.
  EXPECT_THROW(map.apply_update({}, {trace.records().front()}, grid_),
               support::PreconditionError);
}

}  // namespace
}  // namespace mood::profiles
