// Unit suite for the loop-engine ingest ring (stream/spsc_queue.h): the
// single-threaded boundary contract (capacity rounding, wrap, full,
// empty, move-only payloads) plus a two-thread stress run that pins the
// acquire/release contract with element-count and checksum invariants.
// CI runs this under the ASan/UBSan preset; run it under TSan locally
// (-DCMAKE_CXX_FLAGS=-fsanitize=thread) to check the ordering proper.

#include "stream/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "support/error.h"

namespace mood::stream {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscQueue<int>(1024).capacity(), 1024u);
  EXPECT_THROW(SpscQueue<int>(0), support::Error);
}

TEST(SpscQueueTest, PopOnEmptyFailsWithoutTouchingOutput) {
  SpscQueue<int> queue(4);
  int out = 42;
  EXPECT_TRUE(queue.empty_approx());
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_EQ(out, 42);
}

TEST(SpscQueueTest, PushFailsWhenFullAndPreservesValue) {
  SpscQueue<std::unique_ptr<int>> queue(2);
  ASSERT_TRUE(queue.try_push(std::make_unique<int>(1)));
  ASSERT_TRUE(queue.try_push(std::make_unique<int>(2)));
  auto extra = std::make_unique<int>(3);
  EXPECT_FALSE(queue.try_push(std::move(extra)));
  // A failed push must not consume the value: the producer retries with it.
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 3);
  EXPECT_EQ(queue.size_approx(), 2u);
}

TEST(SpscQueueTest, FifoOrderAcrossManyWraps) {
  SpscQueue<std::uint64_t> queue(8);
  std::uint64_t next_pop = 0;
  // 10k elements through a capacity-8 ring exercises every wrap offset.
  for (std::uint64_t next_push = 0; next_push < 10000;) {
    if (queue.try_push(std::uint64_t(next_push))) {
      ++next_push;
      continue;
    }
    std::uint64_t out = 0;
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, next_pop++);
  }
  std::uint64_t out = 0;
  while (queue.try_pop(out)) EXPECT_EQ(out, next_pop++);
  EXPECT_EQ(next_pop, 10000u);
  EXPECT_TRUE(queue.empty_approx());
}

TEST(SpscQueueTest, FillDrainBoundaries) {
  SpscQueue<int> queue(4);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(int(i)));
    EXPECT_FALSE(queue.try_push(99));
    EXPECT_EQ(queue.size_approx(), 4u);
    for (int i = 0; i < 4; ++i) {
      int out = -1;
      ASSERT_TRUE(queue.try_pop(out));
      EXPECT_EQ(out, i);
    }
    int out = -1;
    EXPECT_FALSE(queue.try_pop(out));
  }
}

TEST(SpscQueueTest, MoveOnlyPayloadsSurviveTransit) {
  SpscQueue<std::unique_ptr<std::vector<int>>> queue(2);
  ASSERT_TRUE(queue.try_push(
      std::make_unique<std::vector<int>>(std::vector<int>{1, 2, 3})));
  std::unique_ptr<std::vector<int>> out;
  ASSERT_TRUE(queue.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->size(), 3u);
}

// Two-thread stress: the producer pushes a deterministic sequence, the
// consumer sums and counts everything it pops. Element count and checksum
// must both survive; under TSan this also proves the release/acquire
// pairing publishes slot contents, under ASan/UBSan it proves no slot is
// read before it was written or after it was reclaimed.
TEST(SpscQueueTest, TwoThreadStressKeepsCountAndChecksum) {
  constexpr std::uint64_t kElements = 200000;
  // Small capacity maximises wrap pressure and full/empty collisions.
  SpscQueue<std::uint64_t> queue(16);

  std::uint64_t popped = 0;
  std::uint64_t checksum = 0;
  std::uint64_t last = 0;
  bool ordered = true;
  std::thread consumer([&] {
    while (popped < kElements) {
      std::uint64_t value = 0;
      if (!queue.try_pop(value)) {
        std::this_thread::yield();
        continue;
      }
      // The sequence is 1..N, so order and uniqueness collapse into one
      // monotonicity check.
      ordered = ordered && value == last + 1;
      last = value;
      checksum += value * 2654435761u;
      ++popped;
    }
  });

  std::uint64_t expected_checksum = 0;
  for (std::uint64_t i = 1; i <= kElements; ++i) {
    expected_checksum += i * 2654435761u;
    while (!queue.try_push(std::uint64_t(i))) std::this_thread::yield();
  }
  consumer.join();

  EXPECT_TRUE(ordered);
  EXPECT_EQ(popped, kElements);
  EXPECT_EQ(checksum, expected_checksum);
  EXPECT_TRUE(queue.empty_approx());
}

}  // namespace
}  // namespace mood::stream
