// Property suite for attacks::PopulationIndex (the sublinear
// re-identification index): fuzzes the summaries.h admissibility contract
// over random and adversarially tied profiles, asserts index-vs-scan
// decision identity on populations with duplicates, ties and empty
// profiles, and checks coherence under in-place apply_update (including
// the forced periodic rebuild).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "attacks/bounded_scan.h"
#include "attacks/population_index.h"
#include "geo/cell_grid.h"
#include "profiles/heatmap.h"
#include "profiles/markov_profile.h"
#include "profiles/poi_profile.h"
#include "profiles/summaries.h"
#include "support/rng.h"
#include "test_helpers.h"

namespace mood {
namespace {

using geo::GeoPoint;
using mobility::Record;
using mobility::Timestamp;
using mobility::Trace;
using support::RngStream;

constexpr double kInf = std::numeric_limits<double>::infinity();
const GeoPoint kCity{45.76, 4.83};

/// A trace that dwells: a handful of anchor hotspots around the city,
/// visited in random order with >1h stays, so POI extraction and the
/// Markov chain produce multi-state profiles. A shared downtown anchor is
/// mixed in half the time — the adversarial shape the two-ball covers
/// exist for.
Trace hotspot_trace(RngStream& rng, const std::string& user) {
  std::vector<GeoPoint> anchors;
  const std::size_t hotspots = 1 + rng.uniform_index(4);
  for (std::size_t h = 0; h < hotspots; ++h) {
    anchors.push_back(geo::destination(kCity, rng.uniform(0.0, 2.0 * geo::kPi),
                                       rng.uniform(500.0, 20000.0)));
  }
  if (rng.uniform_index(2) == 0) anchors.push_back(kCity);  // shared downtown
  std::vector<Record> records;
  Timestamp t = 0;
  const std::size_t visits = 3 + rng.uniform_index(6);
  for (std::size_t v = 0; v < visits; ++v) {
    const GeoPoint p =
        geo::destination(anchors[rng.uniform_index(anchors.size())],
                         rng.uniform(0.0, 2.0 * geo::kPi),
                         rng.uniform(0.0, 40.0));
    for (const auto& r : testing::dwell(p, t, 15)) records.push_back(r);
    t += 16 * mobility::kHour;
  }
  return Trace(user, std::move(records));
}

geo::CellGrid city_grid() {
  return geo::CellGrid(geo::LocalProjection(kCity), 800.0);
}

// ----------------------------------------- admissibility fuzz: Topsoe --

class SummaryAdmissibility : public ::testing::TestWithParam<int> {};

TEST_P(SummaryAdmissibility, TopsoeBoundNeverExceedsExact) {
  RngStream rng(GetParam());
  const geo::CellGrid grid = city_grid();
  for (int it = 0; it < 40; ++it) {
    const Trace ta = hotspot_trace(rng, "a");
    // Adversarial ties one third of the time: an identical trace, whose
    // divergence is exactly zero — the bound must come out <= 0.
    const Trace tb = it % 3 == 0 ? Trace("b", std::vector<Record>(
                                                  ta.records().begin(),
                                                  ta.records().end()))
                                 : hotspot_trace(rng, "b");
    const auto a = profiles::CompiledHeatmap::from_trace(ta, grid);
    const auto b = profiles::CompiledHeatmap::from_trace(tb, grid);
    const double exact = profiles::topsoe_divergence(a, b);
    const double lb =
        profiles::topsoe_lower_bound(profiles::summarize(a),
                                     profiles::summarize(b));
    ASSERT_LE(lb, exact) << "iteration " << it;
  }
}

TEST_P(SummaryAdmissibility, PoiBoundNeverExceedsExact) {
  RngStream rng(GetParam());
  for (int it = 0; it < 40; ++it) {
    const Trace ta = hotspot_trace(rng, "a");
    const Trace tb = it % 3 == 0 ? Trace("b", std::vector<Record>(
                                                  ta.records().begin(),
                                                  ta.records().end()))
                                 : hotspot_trace(rng, "b");
    const auto a = profiles::CompiledPoiProfile::incremental(ta);
    const auto b = profiles::CompiledPoiProfile::incremental(tb);
    const auto sa = profiles::summarize(a);
    const auto sb = profiles::summarize(b);
    // The bound is asymmetric (first argument = query); check both
    // orientations against their own exact distance.
    ASSERT_LE(profiles::poi_profile_lower_bound(sa, sb),
              profiles::poi_profile_distance(a, b))
        << "iteration " << it;
    ASSERT_LE(profiles::poi_profile_lower_bound(sb, sa),
              profiles::poi_profile_distance(b, a))
        << "iteration " << it;
  }
}

TEST_P(SummaryAdmissibility, StatsProxBoundNeverExceedsExact) {
  RngStream rng(GetParam());
  for (int it = 0; it < 40; ++it) {
    const Trace ta = hotspot_trace(rng, "a");
    const Trace tb = it % 3 == 0 ? Trace("b", std::vector<Record>(
                                                  ta.records().begin(),
                                                  ta.records().end()))
                                 : hotspot_trace(rng, "b");
    const auto a = profiles::CompiledMarkovProfile::incremental(ta);
    const auto b = profiles::CompiledMarkovProfile::incremental(tb);
    const auto sa = profiles::summarize(a);
    const auto sb = profiles::summarize(b);
    ASSERT_LE(profiles::stats_prox_lower_bound(sa, sb, 1000.0),
              profiles::stats_prox_distance(a, b, 1000.0))
        << "iteration " << it;
    ASSERT_LE(profiles::stats_prox_lower_bound(sb, sa, 1000.0),
              profiles::stats_prox_distance(b, a, 1000.0))
        << "iteration " << it;
  }
}

TEST_P(SummaryAdmissibility, BoundStaysBelowExactAfterApplyUpdate) {
  RngStream rng(GetParam());
  for (int it = 0; it < 15; ++it) {
    std::vector<Record> base = hotspot_trace(rng, "a").records();
    const std::vector<Record> extra =
        hotspot_trace(rng, "a").records();  // fresh hotspots to fold in
    auto poi = profiles::CompiledPoiProfile::incremental(
        Trace("a", std::vector<Record>(base)));
    auto markov = profiles::CompiledMarkovProfile::incremental(
        Trace("a", std::vector<Record>(base)));
    const Timestamp shift = base.back().time + mobility::kHour;
    for (const auto& r : extra) {
      base.push_back(Record{r.position, r.time + shift});
    }
    const Trace window("a", std::vector<Record>(base));
    poi.apply_update(window, extra.size(), 0);
    markov.apply_update(window, extra.size(), 0);

    const Trace tb = hotspot_trace(rng, "b");
    const auto poi_b = profiles::CompiledPoiProfile::incremental(tb);
    const auto markov_b = profiles::CompiledMarkovProfile::incremental(tb);
    ASSERT_LE(profiles::poi_profile_lower_bound(profiles::summarize(poi_b),
                                                profiles::summarize(poi)),
              profiles::poi_profile_distance(poi_b, poi))
        << "iteration " << it;
    ASSERT_LE(
        profiles::stats_prox_lower_bound(profiles::summarize(markov_b),
                                         profiles::summarize(markov), 1000.0),
        profiles::stats_prox_distance(markov_b, markov, 1000.0))
        << "iteration " << it;
  }
}

TEST_P(SummaryAdmissibility, CoversContainTheirOwnPoints) {
  RngStream rng(GetParam());
  for (int it = 0; it < 20; ++it) {
    const auto profile =
        profiles::CompiledPoiProfile::incremental(hotspot_trace(rng, "a"));
    const auto summary = profiles::summarize(profile);
    for (const auto& p : summary.centers) {
      EXPECT_EQ(profiles::point_ball_separation_m(p, summary.ball), 0.0);
      EXPECT_EQ(profiles::point_cover_separation_m(p, summary.cover), 0.0);
    }
  }
}

TEST_P(SummaryAdmissibility, EmptyProfilesBoundToInfinity) {
  RngStream rng(GetParam());
  const geo::CellGrid grid = city_grid();
  const auto full_map =
      profiles::CompiledHeatmap::from_trace(hotspot_trace(rng, "a"), grid);
  const auto empty_map = profiles::CompiledHeatmap();
  EXPECT_EQ(profiles::topsoe_lower_bound(profiles::summarize(full_map),
                                         profiles::summarize(empty_map)),
            kInf);
  const auto full_poi =
      profiles::CompiledPoiProfile::incremental(hotspot_trace(rng, "b"));
  EXPECT_EQ(profiles::poi_profile_lower_bound(
                profiles::summarize(full_poi),
                profiles::summarize(profiles::CompiledPoiProfile())),
            kInf);
  const auto full_markov =
      profiles::CompiledMarkovProfile::incremental(hotspot_trace(rng, "c"));
  EXPECT_EQ(profiles::stats_prox_lower_bound(
                profiles::summarize(full_markov),
                profiles::summarize(profiles::CompiledMarkovProfile()),
                1000.0),
            kInf);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryAdmissibility,
                         ::testing::Values(7, 42, 1234, 90210));

// --------------------------------------- index-vs-scan decision identity --

/// Asserts argmin and is_first_argmin agree with the linear scans for one
/// query, for every trained owner plus an unknown one.
template <typename Traits, typename Profile, typename Exact, typename Bounded>
void expect_index_matches_scan(
    const attacks::PopulationIndex<Traits>& index,
    const std::vector<std::pair<mobility::UserId, Profile>>& population,
    const typename Traits::Summary& query, const Exact& exact,
    const Bounded& bounded) {
  EXPECT_EQ(index.argmin(query, bounded),
            attacks::scan_argmin(population, bounded));
  std::vector<mobility::UserId> owners{"ghost"};
  for (const auto& [user, profile] : population) owners.push_back(user);
  for (const auto& owner : owners) {
    EXPECT_EQ(index.is_first_argmin(query, owner, exact, bounded),
              attacks::scan_is_first_argmin(population, owner, exact, bounded))
        << "owner " << owner;
  }
}

class IndexDecisionIdentity : public ::testing::TestWithParam<int> {};

TEST_P(IndexDecisionIdentity, PoiIndexMatchesScans) {
  RngStream rng(GetParam());
  std::vector<std::pair<mobility::UserId, profiles::CompiledPoiProfile>>
      population;
  for (int u = 0; u < 70; ++u) {
    const std::string user = "u" + std::to_string(u);
    population.emplace_back(
        user, profiles::CompiledPoiProfile::incremental(
                  hotspot_trace(rng, user)));
  }
  population.emplace_back("empty", profiles::CompiledPoiProfile());
  // Duplicate id (first occurrence must own) and duplicate profile under a
  // second id (a forced exact tie the first-strict-min rule arbitrates).
  population.emplace_back("u3", population[5].second);
  population.emplace_back("twin", population[7].second);

  attacks::PopulationIndex<attacks::PoiIndexTraits> index;
  index.build(population);
  for (int q = 0; q < 12; ++q) {
    // Every third query is a member profile verbatim: a guaranteed tie.
    const auto query = q % 3 == 0
                           ? population[static_cast<std::size_t>(q)].second
                           : profiles::CompiledPoiProfile::incremental(
                                 hotspot_trace(rng, "q"));
    expect_index_matches_scan(
        index, population, profiles::summarize(query),
        [&](const profiles::CompiledPoiProfile& p) {
          return profiles::poi_profile_distance(query, p);
        },
        [&](const profiles::CompiledPoiProfile& p, double bound) {
          return profiles::poi_profile_distance_bounded(query, p, bound);
        });
  }
}

TEST_P(IndexDecisionIdentity, PitIndexMatchesScans) {
  RngStream rng(GetParam());
  std::vector<std::pair<mobility::UserId, profiles::CompiledMarkovProfile>>
      population;
  for (int u = 0; u < 70; ++u) {
    const std::string user = "u" + std::to_string(u);
    population.emplace_back(
        user, profiles::CompiledMarkovProfile::incremental(
                  hotspot_trace(rng, user)));
  }
  population.emplace_back("empty", profiles::CompiledMarkovProfile());
  population.emplace_back("u3", population[5].second);
  population.emplace_back("twin", population[7].second);

  attacks::PopulationIndex<attacks::PitIndexTraits> index(
      attacks::PitIndexTraits{1000.0});
  index.build(population);
  for (int q = 0; q < 12; ++q) {
    const auto query = q % 3 == 0
                           ? population[static_cast<std::size_t>(q)].second
                           : profiles::CompiledMarkovProfile::incremental(
                                 hotspot_trace(rng, "q"));
    expect_index_matches_scan(
        index, population, profiles::summarize(query),
        [&](const profiles::CompiledMarkovProfile& p) {
          return profiles::stats_prox_distance(query, p, 1000.0);
        },
        [&](const profiles::CompiledMarkovProfile& p, double bound) {
          return profiles::stats_prox_distance_bounded(query, p, 1000.0,
                                                       bound);
        });
  }
}

TEST_P(IndexDecisionIdentity, ApIndexMatchesScansAndStaysCoherentUnderUpdates) {
  RngStream rng(GetParam());
  const geo::CellGrid grid = city_grid();
  std::vector<std::pair<mobility::UserId, profiles::CompiledHeatmap>>
      population;
  for (int u = 0; u < 70; ++u) {
    const std::string user = "u" + std::to_string(u);
    population.emplace_back(user, profiles::CompiledHeatmap::incremental(
                                      hotspot_trace(rng, user), grid));
  }
  population.emplace_back("empty", profiles::CompiledHeatmap());
  population.emplace_back("u3", population[5].second);
  population.emplace_back("twin", population[7].second);

  attacks::PopulationIndex<attacks::ApIndexTraits> index;
  index.build(population);

  const auto check = [&](const profiles::CompiledHeatmap& query) {
    expect_index_matches_scan(
        index, population, profiles::summarize(query),
        [&](const profiles::CompiledHeatmap& p) {
          return profiles::topsoe_divergence(query, p);
        },
        [&](const profiles::CompiledHeatmap& p, double bound) {
          return profiles::topsoe_divergence_bounded(query, p, bound);
        });
  };
  for (int q = 0; q < 8; ++q) {
    check(q % 3 == 0 ? population[static_cast<std::size_t>(q)].second
                     : profiles::CompiledHeatmap::from_trace(
                           hotspot_trace(rng, "q"), grid));
  }

  // In-place mutations: fold fresh records into random entries, tell the
  // index, and require identity to hold against the mutated population.
  for (int round = 0; round < 10; ++round) {
    const std::size_t i = rng.uniform_index(70);
    population[i].second.apply_update(hotspot_trace(rng, "delta").records(),
                                      {}, grid);
    index.update(i);
  }
  for (int q = 0; q < 6; ++q) {
    check(q % 2 == 0 ? population[static_cast<std::size_t>(2 * q)].second
                     : profiles::CompiledHeatmap::from_trace(
                           hotspot_trace(rng, "q2"), grid));
  }
}

TEST_P(IndexDecisionIdentity, SmallPopulationsDelegateToTheScans) {
  RngStream rng(GetParam());
  const geo::CellGrid grid = city_grid();
  std::vector<std::pair<mobility::UserId, profiles::CompiledHeatmap>>
      population;
  for (int u = 0; u < 8; ++u) {  // far below kIndexMinPopulation
    const std::string user = "u" + std::to_string(u);
    population.emplace_back(user, profiles::CompiledHeatmap::incremental(
                                      hotspot_trace(rng, user), grid));
  }
  attacks::PopulationIndex<attacks::ApIndexTraits> index;
  index.build(population);
  for (int round = 0; round < 4; ++round) {
    const std::size_t i = rng.uniform_index(population.size());
    population[i].second.apply_update(hotspot_trace(rng, "delta").records(),
                                      {}, grid);
    index.update(i);
  }
  const auto query =
      profiles::CompiledHeatmap::from_trace(hotspot_trace(rng, "q"), grid);
  expect_index_matches_scan(
      index, population, profiles::summarize(query),
      [&](const profiles::CompiledHeatmap& p) {
        return profiles::topsoe_divergence(query, p);
      },
      [&](const profiles::CompiledHeatmap& p, double bound) {
        return profiles::topsoe_divergence_bounded(query, p, bound);
      });
  // Delegated queries count work but never prune.
  EXPECT_GT(index.stats().queries, 0u);
  EXPECT_GT(index.stats().exact_evaluations, 0u);
  EXPECT_EQ(index.stats().pruned_candidates, 0u);
}

TEST_P(IndexDecisionIdentity, PeriodicRebuildFiresAndPreservesDecisions) {
  RngStream rng(GetParam());
  const geo::CellGrid grid = city_grid();
  std::vector<std::pair<mobility::UserId, profiles::CompiledHeatmap>>
      population;
  for (int u = 0; u < 64; ++u) {  // exactly kIndexMinPopulation
    const std::string user = "u" + std::to_string(u);
    population.emplace_back(user, profiles::CompiledHeatmap::incremental(
                                      hotspot_trace(rng, user), grid));
  }
  attacks::PopulationIndex<attacks::ApIndexTraits> index;
  index.build(population);
  ASSERT_EQ(index.stats().rebuilds, 1u);
  // size() updates force a hygiene rebuild (the stream cost model reads
  // the same counter as index_rebuilds).
  for (int round = 0; round < 64; ++round) {
    const std::size_t i = rng.uniform_index(population.size());
    population[i].second.apply_update(hotspot_trace(rng, "delta").records(),
                                      {}, grid);
    index.update(i);
  }
  EXPECT_GE(index.stats().rebuilds, 2u);
  const auto query =
      profiles::CompiledHeatmap::from_trace(hotspot_trace(rng, "q"), grid);
  expect_index_matches_scan(
      index, population, profiles::summarize(query),
      [&](const profiles::CompiledHeatmap& p) {
        return profiles::topsoe_divergence(query, p);
      },
      [&](const profiles::CompiledHeatmap& p, double bound) {
        return profiles::topsoe_divergence_bounded(query, p, bound);
      });
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexDecisionIdentity,
                         ::testing::Values(3, 11, 2026));

}  // namespace
}  // namespace mood
