// Unit tests for the LPPM set: Geo-I (planar Laplace), TRL (dummies),
// HMC (heatmap confusion), composition algebra and the registry.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geo/cell_grid.h"
#include "lppm/composition.h"
#include "lppm/geo_ind.h"
#include "lppm/heatmap_confusion.h"
#include "lppm/registry.h"
#include "lppm/trilateration.h"
#include "profiles/heatmap.h"
#include "support/error.h"
#include "test_helpers.h"

namespace mood::lppm {
namespace {

using geo::GeoPoint;
using mobility::Trace;
using support::RngStream;
using testing::dwell;
using testing::trace_of;

const GeoPoint kHome{45.7640, 4.8357};
const GeoPoint kWork{45.7800, 4.8700};

Trace sample_trace(const std::string& user = "u") {
  std::vector<mobility::Record> records = dwell(kHome, 0, 40);
  auto w = dwell(kWork, 5 * mobility::kHour, 40);
  records.insert(records.end(), w.begin(), w.end());
  return Trace(user, std::move(records));
}

// ----------------------------------------------------------------- GeoI --

TEST(GeoI, PreservesTimestampsAndCardinality) {
  const GeoIndistinguishability geoi(0.01);
  const Trace in = sample_trace();
  const Trace out = geoi.apply(in, RngStream(1));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out.at(i).time, in.at(i).time);
  }
  EXPECT_EQ(out.user(), in.user());
}

TEST(GeoI, DeterministicForSameStream) {
  const GeoIndistinguishability geoi(0.01);
  const Trace in = sample_trace();
  EXPECT_EQ(geoi.apply(in, RngStream(7)), geoi.apply(in, RngStream(7)));
}

TEST(GeoI, DifferentStreamsDiffer) {
  const GeoIndistinguishability geoi(0.01);
  const Trace in = sample_trace();
  EXPECT_NE(geoi.apply(in, RngStream(7)), geoi.apply(in, RngStream(8)));
}

TEST(GeoI, MeanDisplacementMatchesTheory) {
  // E[r] for the polar Laplace is 2/epsilon.
  const double epsilon = 0.01;
  const GeoIndistinguishability geoi(epsilon);
  const Trace in = sample_trace();
  RngStream rng(3);
  double total = 0.0;
  int count = 0;
  for (int rep = 0; rep < 30; ++rep) {
    const Trace out = geoi.apply(in, rng.fork("rep", rep));
    for (std::size_t i = 0; i < in.size(); ++i) {
      total += geo::haversine_m(in.at(i).position, out.at(i).position);
      ++count;
    }
  }
  EXPECT_NEAR(total / count, 2.0 / epsilon, 12.0);
}

TEST(GeoI, RadiusSamplerMatchesAnalyticCdf) {
  // CDF of the polar Laplace radius: C(r) = 1 - (1 + eps r) e^{-eps r}.
  const double epsilon = 0.01;
  const GeoIndistinguishability geoi(epsilon);
  RngStream rng(11);
  const int n = 50000;
  std::vector<double> radii;
  radii.reserve(n);
  for (int i = 0; i < n; ++i) radii.push_back(geoi.sample_radius_m(rng));
  for (const double q : {100.0, 200.0, 400.0, 800.0}) {
    const double expected = 1.0 - (1.0 + epsilon * q) * std::exp(-epsilon * q);
    const double observed =
        static_cast<double>(std::count_if(radii.begin(), radii.end(),
                                          [&](double r) { return r <= q; })) /
        n;
    EXPECT_NEAR(observed, expected, 0.01) << "q=" << q;
  }
}

TEST(GeoI, LowerEpsilonMeansMoreNoise) {
  const Trace in = sample_trace();
  auto mean_noise = [&](double eps) {
    const GeoIndistinguishability geoi(eps);
    const Trace out = geoi.apply(in, RngStream(5));
    double total = 0.0;
    for (std::size_t i = 0; i < in.size(); ++i) {
      total += geo::haversine_m(in.at(i).position, out.at(i).position);
    }
    return total / static_cast<double>(in.size());
  };
  EXPECT_GT(mean_noise(0.001), mean_noise(0.1));
}

TEST(GeoI, RejectsNonPositiveEpsilon) {
  EXPECT_THROW(GeoIndistinguishability(0.0), support::PreconditionError);
  EXPECT_THROW(GeoIndistinguishability(-1.0), support::PreconditionError);
}

// ------------------------------------------------------------------ TRL --

TEST(Trl, EmitsThreeDummiesPerRecordWithinRadius) {
  const Trilateration trl(1000.0);
  const Trace in = sample_trace();
  const Trace out = trl.apply(in, RngStream(2));
  ASSERT_EQ(out.size(), in.size() * 3);
  double min_r = 1e9;
  for (std::size_t i = 0; i < in.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      const auto& dummy = out.at(i * 3 + d);
      EXPECT_EQ(dummy.time, in.at(i).time);
      const double r = geo::haversine_m(dummy.position, in.at(i).position);
      EXPECT_LE(r, 1000.5);
      min_r = std::min(min_r, r);
    }
  }
  EXPECT_LT(min_r, 400.0);  // default disk sampling reaches near the centre
}

TEST(Trl, AnnulusVariantKeepsAwayFromTruePosition) {
  const Trilateration trl(1000.0, 3, 0.7);
  const Trace in = sample_trace();
  const Trace out = trl.apply(in, RngStream(2));
  for (std::size_t i = 0; i < in.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      const double r =
          geo::haversine_m(out.at(i * 3 + d).position, in.at(i).position);
      EXPECT_GE(r, 699.5);
      EXPECT_LE(r, 1000.5);
    }
  }
}

TEST(Trl, DummyCountConfigurable) {
  const Trilateration trl(500.0, 5);
  const Trace in = sample_trace();
  EXPECT_EQ(trl.apply(in, RngStream(2)).size(), in.size() * 5);
}

TEST(Trl, NeverPublishesTheTruePosition) {
  const Trilateration trl(1000.0);
  const Trace in = sample_trace();
  const Trace out = trl.apply(in, RngStream(2));
  int exact = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      if (geo::haversine_m(out.at(i * 3 + d).position, in.at(i).position) <
          0.5) {
        ++exact;
      }
    }
  }
  EXPECT_EQ(exact, 0);
}

TEST(Trl, DeterministicForSameStream) {
  const Trilateration trl(1000.0);
  const Trace in = sample_trace();
  EXPECT_EQ(trl.apply(in, RngStream(9)), trl.apply(in, RngStream(9)));
}

TEST(Trl, RejectsBadParameters) {
  EXPECT_THROW(Trilateration(0.0), support::PreconditionError);
  EXPECT_THROW(Trilateration(100.0, 0), support::PreconditionError);
  EXPECT_THROW(Trilateration(100.0, 3, 1.0), support::PreconditionError);
  EXPECT_THROW(Trilateration(100.0, 3, -0.1), support::PreconditionError);
}

TEST(Hmc, CellBudgetCapsTheAlignment) {
  // With max_mapped_cells = 1 only the hottest cell can move even at full
  // coverage.
  const geo::GeoPoint home{45.7640, 4.8357};
  const geo::CellGrid grid(geo::LocalProjection(home), 800.0);
  const auto dataset = testing::distinct_population(3, 4);
  std::vector<Trace> background(dataset.traces().begin(),
                                dataset.traces().end());
  const auto pool = std::make_shared<DonorPool>(background, grid);
  const HeatmapConfusion hmc(grid, pool, 1.0, 1, 1e9);
  const Trace& own = background[0];
  const Trace out = hmc.apply(own, RngStream(1));
  std::set<std::pair<int, int>> moved_cells;
  for (std::size_t i = 0; i < own.size(); ++i) {
    if (geo::haversine_m(own.at(i).position, out.at(i).position) > 0.01) {
      const auto cell = grid.cell_of(own.at(i).position);
      moved_cells.insert({cell.ix, cell.iy});
    }
  }
  EXPECT_LE(moved_cells.size(), 1u);
  EXPECT_THROW(HeatmapConfusion(grid, pool, 1.0, 0),
               support::PreconditionError);
}

// ------------------------------------------------------------------ HMC --

class HmcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    grid_ = std::make_unique<geo::CellGrid>(geo::LocalProjection(kHome),
                                            800.0);
    // Background population: three users at distinct places.
    const auto dataset = testing::distinct_population(3, 4);
    for (const auto& trace : dataset.traces()) background_.push_back(trace);
    pool_ = std::make_shared<DonorPool>(background_, *grid_);
  }

  std::unique_ptr<geo::CellGrid> grid_;
  std::vector<Trace> background_;
  std::shared_ptr<const DonorPool> pool_;
};

TEST_F(HmcTest, OutputHeatmapResemblesDonorNotSelf) {
  // Unlimited budgets: the full map is aligned onto the donor.
  const HeatmapConfusion hmc(*grid_, pool_, 1.0, 4096, 1e9);
  const Trace& own = background_[0];
  const Trace out = hmc.apply(own, RngStream(1));

  const auto own_map = profiles::Heatmap::from_trace(own, *grid_);
  const auto out_map = profiles::Heatmap::from_trace(out, *grid_);
  const auto donor =
      hmc.choose_donor(own_map, own.user());
  ASSERT_NE(donor, nullptr);
  EXPECT_NE(donor->user, own.user());
  EXPECT_LT(profiles::topsoe_divergence(out_map, donor->heatmap),
            profiles::topsoe_divergence(out_map, own_map));
}

TEST_F(HmcTest, KeepsTimestampsAndCount) {
  const HeatmapConfusion hmc(*grid_, pool_, 0.8);
  const Trace& own = background_[1];
  const Trace out = hmc.apply(own, RngStream(1));
  ASSERT_EQ(out.size(), own.size());
  for (std::size_t i = 0; i < own.size(); ++i) {
    EXPECT_EQ(out.at(i).time, own.at(i).time);
  }
}

TEST_F(HmcTest, DonorSearchExcludesSelf) {
  const HeatmapConfusion hmc(*grid_, pool_, 0.8);
  const auto own_map =
      profiles::Heatmap::from_trace(background_[2], *grid_);
  const auto* donor = hmc.choose_donor(own_map, background_[2].user());
  ASSERT_NE(donor, nullptr);
  EXPECT_NE(donor->user, background_[2].user());
}

TEST_F(HmcTest, PartialCoverageLeavesColdCellsInPlace) {
  // With tiny coverage only the single hottest cell moves; other records
  // stay exactly where they were. (Unlimited budget so the plan is
  // feasible.)
  const HeatmapConfusion hmc(*grid_, pool_, 0.05, 32, 1e9);
  const Trace& own = background_[0];
  const Trace out = hmc.apply(own, RngStream(1));
  int unchanged = 0;
  for (std::size_t i = 0; i < own.size(); ++i) {
    if (geo::haversine_m(own.at(i).position, out.at(i).position) < 0.01) {
      ++unchanged;
    }
  }
  EXPECT_GT(unchanged, 0);
  EXPECT_LT(unchanged, static_cast<int>(own.size()));
}

TEST_F(HmcTest, EmptyTracePassesThrough) {
  const HeatmapConfusion hmc(*grid_, pool_, 0.8);
  EXPECT_TRUE(hmc.apply(Trace("ghost", {}), RngStream(1)).empty());
}

TEST_F(HmcTest, ValidatesConstruction) {
  EXPECT_THROW(HeatmapConfusion(*grid_, nullptr, 0.8),
               support::PreconditionError);
  EXPECT_THROW(HeatmapConfusion(*grid_, pool_, 0.0),
               support::PreconditionError);
  EXPECT_THROW(HeatmapConfusion(*grid_, pool_, 1.5),
               support::PreconditionError);
  EXPECT_THROW(HeatmapConfusion(*grid_, pool_, 0.8, 64, 0.0),
               support::PreconditionError);
}

TEST_F(HmcTest, UnaffordablePlanMakesHmcRefuse) {
  // If even the cheapest donor costs more than the budget, the trace comes
  // back unchanged (fail-open: the user stays visibly unprotected instead
  // of silently wrecking utility). A huge budget relocates everything.
  const Trace& own = background_[0];
  auto moved_fraction = [&](double budget) {
    const HeatmapConfusion hmc(*grid_, pool_, 1.0, 4096, budget);
    const Trace out = hmc.apply(own, RngStream(1));
    std::size_t moved = 0;
    for (std::size_t i = 0; i < own.size(); ++i) {
      if (geo::haversine_m(own.at(i).position, out.at(i).position) > 0.01) {
        ++moved;
      }
    }
    return static_cast<double>(moved) / static_cast<double>(own.size());
  };
  EXPECT_DOUBLE_EQ(moved_fraction(10.0), 0.0);  // refusal
  EXPECT_NEAR(moved_fraction(1e9), 1.0, 1e-9);  // full alignment
}

TEST_F(HmcTest, DonorMinimisesRelocationCost) {
  const HeatmapConfusion hmc(*grid_, pool_, 1.0, 4096, 1e9);
  const auto own_map = profiles::Heatmap::from_trace(background_[0], *grid_);
  const auto user_cells = own_map.ranked_cells();
  const auto* donor = hmc.choose_donor(own_map, background_[0].user());
  ASSERT_NE(donor, nullptr);
  const double chosen_cost =
      hmc.relocation_cost(user_cells, own_map.total(), *donor);
  for (const auto& entry : pool_->entries()) {
    if (entry.user == background_[0].user()) continue;
    EXPECT_LE(chosen_cost,
              hmc.relocation_cost(user_cells, own_map.total(), entry) + 1e-9);
  }
}

// ---------------------------------------------------------- Composition --

TEST(Composition, AppliesStagesInOrder) {
  const testing::ShiftLppm a("A", 100.0);
  const testing::ShiftLppm b("B", 50.0);
  const Composition ab({&a, &b});
  EXPECT_EQ(ab.name(), "A+B");
  const Trace in = sample_trace();
  const Trace out = ab.apply(in, RngStream(1));
  EXPECT_NEAR(testing::mean_north_shift_m(in, out), 150.0, 0.5);
}

TEST(Composition, OrderChangesNameNotAdditiveShift) {
  const testing::ShiftLppm a("A", 100.0);
  const testing::ShiftLppm b("B", 50.0);
  const Composition ab({&a, &b});
  const Composition ba({&b, &a});
  EXPECT_NE(ab.name(), ba.name());
  const Trace in = sample_trace();
  // Shifts commute (additive), but names must encode the order.
  EXPECT_NEAR(testing::mean_north_shift_m(in, ab.apply(in, RngStream(1))),
              testing::mean_north_shift_m(in, ba.apply(in, RngStream(1))),
              0.5);
}

TEST(Composition, RejectsEmptyAndNull) {
  EXPECT_THROW(Composition({}), support::PreconditionError);
  EXPECT_THROW(Composition({nullptr}), support::PreconditionError);
}

TEST(CompositionEnumeration, CountsMatchClosedForm) {
  // |C| = sum_{i=1..n} n!/(n-i)!; paper: n = 3 -> 15.
  EXPECT_EQ(composition_count(3, 1, 3), 15u);
  EXPECT_EQ(composition_count(3, 2, 3), 12u);  // C \ L
  EXPECT_EQ(composition_count(1, 1, 1), 1u);
  EXPECT_EQ(composition_count(2, 1, 2), 4u);
  EXPECT_EQ(composition_count(4, 1, 4), 64u);
}

TEST(CompositionEnumeration, EnumeratesAllDistinctOrderings) {
  const testing::ShiftLppm a("A", 1), b("B", 2), c("C", 3);
  const std::vector<const Lppm*> singles{&a, &b, &c};
  const auto all = enumerate_compositions(singles, 1, 3);
  EXPECT_EQ(all.size(), 15u);
  std::set<std::string> names;
  for (const auto& comp : all) names.insert(comp.name());
  EXPECT_EQ(names.size(), 15u);  // all distinct
  EXPECT_TRUE(names.contains("A"));
  EXPECT_TRUE(names.contains("A+B+C"));
  EXPECT_TRUE(names.contains("C+B+A"));
}

TEST(CompositionEnumeration, OrderedByIncreasingLength) {
  const testing::ShiftLppm a("A", 1), b("B", 2), c("C", 3);
  const auto all = enumerate_compositions({&a, &b, &c}, 1, 3);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].length(), all[i].length());
  }
}

TEST(CompositionEnumeration, RespectsLengthBounds) {
  const testing::ShiftLppm a("A", 1), b("B", 2), c("C", 3);
  const auto pairs_only = enumerate_compositions({&a, &b, &c}, 2, 2);
  EXPECT_EQ(pairs_only.size(), 6u);
  for (const auto& comp : pairs_only) EXPECT_EQ(comp.length(), 2u);
}

TEST(CompositionEnumeration, ValidatesBounds) {
  const testing::ShiftLppm a("A", 1);
  EXPECT_THROW(enumerate_compositions({&a}, 0, 1),
               support::PreconditionError);
  EXPECT_THROW(enumerate_compositions({&a}, 2, 1),
               support::PreconditionError);
}

// -------------------------------------------------------------- Registry --

TEST(Registry, AddFindAndViews) {
  LppmRegistry registry;
  const Lppm* a = registry.add(std::make_unique<testing::ShiftLppm>("A", 1));
  registry.add(std::make_unique<testing::ShiftLppm>("B", 2));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.find("A"), a);
  EXPECT_EQ(registry.find("missing"), nullptr);
  EXPECT_EQ(registry.singles().size(), 2u);
}

TEST(Registry, RejectsDuplicatesAndNull) {
  LppmRegistry registry;
  registry.add(std::make_unique<testing::ShiftLppm>("A", 1));
  EXPECT_THROW(registry.add(std::make_unique<testing::ShiftLppm>("A", 9)),
               support::PreconditionError);
  EXPECT_THROW(registry.add(nullptr), support::PreconditionError);
}

TEST(Registry, CompositionSetsMatchPaperSizes) {
  LppmRegistry registry;
  registry.add(std::make_unique<testing::ShiftLppm>("A", 1));
  registry.add(std::make_unique<testing::ShiftLppm>("B", 2));
  registry.add(std::make_unique<testing::ShiftLppm>("C", 3));
  EXPECT_EQ(registry.all_compositions().size(), 15u);
  EXPECT_EQ(registry.multi_compositions().size(), 12u);
}

TEST(Registry, MultiCompositionsEmptyForSingleLppm) {
  LppmRegistry registry;
  registry.add(std::make_unique<testing::ShiftLppm>("A", 1));
  EXPECT_TRUE(registry.multi_compositions().empty());
}

}  // namespace
}  // namespace mood::lppm
