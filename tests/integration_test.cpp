// End-to-end integration tests: real attacks + real LPPMs + the MooD engine
// over a synthetic city, exercising the same pipeline the benches run (at a
// small scale so the suite stays fast).

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "simulation/generator.h"
#include "simulation/presets.h"
#include "support/logging.h"

namespace mood::core {
namespace {

/// Small but structured population: 14 routine users over 8 days, mostly
/// private POIs so the no-LPPM baseline is clearly vulnerable.
simulation::GeneratorParams population_params() {
  simulation::GeneratorParams p;
  p.users = 14;
  p.days = 8;
  p.records_per_user_per_day = 180.0;
  p.p_private_poi = 0.75;
  p.p_private_leisure = 0.8;
  // Keep private places within a few km: with only 14 users the donor
  // pool is sparse, and HMC (correctly) refuses plans whose relocation
  // cost exceeds its utility budget.
  p.private_poi_spread_m = 4000.0;
  p.relocation_prob = 0.1;
  p.seed = 1234;
  return p;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    support::set_log_level(support::LogLevel::kWarn);
    dataset_ = new mobility::Dataset(
        simulation::generate(population_params()));
    ExperimentConfig config;
    config.min_records = 8;
    harness_ = new ExperimentHarness(*dataset_, config, /*seed=*/21);
  }
  static void TearDownTestSuite() {
    delete harness_;
    delete dataset_;
    harness_ = nullptr;
    dataset_ = nullptr;
  }

  static mobility::Dataset* dataset_;
  static ExperimentHarness* harness_;
};

mobility::Dataset* IntegrationTest::dataset_ = nullptr;
ExperimentHarness* IntegrationTest::harness_ = nullptr;

TEST_F(IntegrationTest, HarnessKeepsActiveUsers) {
  EXPECT_EQ(harness_->pairs().size(), 14u);
  EXPECT_EQ(harness_->attacks().size(), 3u);
  EXPECT_EQ(harness_->registry().size(), 3u);
  EXPECT_GT(harness_->total_test_records(), 0u);
}

TEST_F(IntegrationTest, RegistryHoldsPaperLppms) {
  EXPECT_NE(harness_->registry().find("GeoI"), nullptr);
  EXPECT_NE(harness_->registry().find("TRL"), nullptr);
  EXPECT_NE(harness_->registry().find("HMC"), nullptr);
}

TEST_F(IntegrationTest, RawTracesAreVulnerable) {
  const auto result = harness_->evaluate_no_lppm();
  // Distinct private POIs + no protection => most users re-identified.
  EXPECT_GT(result.non_protected_users(), result.user_count() / 2);
  EXPECT_GT(result.data_loss(), 0.0);
}

TEST_F(IntegrationTest, SingleLppmsProtectSomeUsers) {
  const auto raw = harness_->evaluate_no_lppm();
  const auto hmc = harness_->evaluate_single("HMC");
  // HMC is built to defeat re-identification: strictly better than raw.
  EXPECT_LT(hmc.non_protected_users(), raw.non_protected_users());
}

TEST_F(IntegrationTest, HybridAtLeastAsGoodAsBestSingle) {
  const auto geoi = harness_->evaluate_single("GeoI");
  const auto trl = harness_->evaluate_single("TRL");
  const auto hmc = harness_->evaluate_single("HMC");
  const auto hybrid = harness_->evaluate_hybrid();
  const std::size_t best_single =
      std::min({geoi.non_protected_users(), trl.non_protected_users(),
                hmc.non_protected_users()});
  EXPECT_LE(hybrid.non_protected_users(), best_single);
}

TEST_F(IntegrationTest, MoodSearchAtLeastAsGoodAsHybrid) {
  const auto hybrid = harness_->evaluate_hybrid();
  const auto mood = harness_->evaluate_mood_search();
  EXPECT_LE(mood.non_protected_users(), hybrid.non_protected_users());
}

TEST_F(IntegrationTest, FullMoodMinimisesDataLoss) {
  const auto hybrid = harness_->evaluate_hybrid();
  const auto mood = harness_->evaluate_mood_full();
  EXPECT_LE(mood.data_loss(), hybrid.data_loss());
  // Fig. 10 shape: MooD's loss is (near) zero.
  EXPECT_LT(mood.data_loss(), 0.10);
}

TEST_F(IntegrationTest, MoodOutcomesAreInternallyConsistent) {
  const auto mood = harness_->evaluate_mood_full();
  for (const auto& user : mood.users) {
    EXPECT_LE(user.lost_records, user.records);
    EXPECT_LE(user.protected_subtraces, user.subtraces);
    if (user.level == ProtectionLevel::kSingle ||
        user.level == ProtectionLevel::kComposition) {
      EXPECT_EQ(user.subtraces, 0u);
      EXPECT_EQ(user.lost_records, 0u);
      EXPECT_FALSE(user.winner.empty());
    }
    EXPECT_GT(user.lppm_applications, 0u);
  }
}

TEST_F(IntegrationTest, SingleAttackSubsetIsWeaker) {
  // Fig. 6 vs Fig. 7: one attack re-identifies at most as many users as
  // three attacks do.
  const auto ap_only =
      harness_->evaluate_no_lppm({harness_->ap_attack_index()});
  const auto all = harness_->evaluate_no_lppm();
  EXPECT_LE(ap_only.non_protected_users(), all.non_protected_users());
}

TEST_F(IntegrationTest, DeterministicAcrossHarnesses) {
  ExperimentConfig config;
  config.min_records = 8;
  const ExperimentHarness again(*dataset_, config, /*seed=*/21);
  EXPECT_EQ(again.evaluate_no_lppm().non_protected_users(),
            harness_->evaluate_no_lppm().non_protected_users());
  EXPECT_EQ(again.evaluate_mood_search().non_protected_users(),
            harness_->evaluate_mood_search().non_protected_users());
}

TEST_F(IntegrationTest, StrategyResultAccountingIsConsistent) {
  const auto result = harness_->evaluate_hybrid();
  std::size_t protected_count = 0;
  for (const auto& user : result.users) {
    if (user.is_protected) {
      ++protected_count;
      EXPECT_FALSE(user.winner.empty());
      EXPECT_GE(user.distortion, 0.0);
    }
  }
  EXPECT_EQ(protected_count + result.non_protected_users(),
            result.user_count());
  const auto bands = result.distortion_bands();
  EXPECT_EQ(bands[0] + bands[1] + bands[2] + bands[3], protected_count);
}

TEST_F(IntegrationTest, EngineExposedForDirectUse) {
  const auto engine = harness_->make_engine();
  EXPECT_EQ(engine.candidate_count(), 15u);  // 3 singles + 12 compositions
  const auto& pair = harness_->pairs()[0];
  const auto result = engine.protect(pair.test);
  EXPECT_GT(result.original_records, 0u);
}

}  // namespace
}  // namespace mood::core
