// Unit tests for the support subsystem: RNG streams, special functions,
// CSV, options, logging and the thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "support/csv.h"
#include "support/error.h"
#include "support/logging.h"
#include "support/math.h"
#include "support/options.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace mood::support {
namespace {

// ---------------------------------------------------------------- RNG --

TEST(RngStream, SameSeedSameSequence) {
  RngStream a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngStream, DifferentSeedsDiverge) {
  RngStream a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(RngStream, ForkIsDeterministicAndLabelled) {
  const RngStream root(42);
  RngStream a = root.fork("alpha");
  RngStream a2 = root.fork("alpha");
  RngStream b = root.fork("beta");
  EXPECT_EQ(a.next(), a2.next());
  EXPECT_NE(a.seed(), b.seed());
}

TEST(RngStream, ForkWithIndexGivesIndependentStreams) {
  const RngStream root(42);
  EXPECT_NE(root.fork("x", 0).next(), root.fork("x", 1).next());
}

TEST(RngStream, ForkDoesNotAdvanceParent) {
  RngStream root(7);
  RngStream copy = root;
  (void)root.fork("child");
  EXPECT_EQ(root.next(), copy.next());
}

TEST(RngStream, UniformWithinBounds) {
  RngStream rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngStream, UniformRejectsInvertedBounds) {
  RngStream rng(9);
  EXPECT_THROW(rng.uniform(2.0, 1.0), PreconditionError);
}

TEST(RngStream, UniformIndexCoversRangeUniformly) {
  RngStream rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) counts[rng.uniform_index(10)]++;
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 10 * 0.15);
  }
}

TEST(RngStream, UniformIndexRejectsZero) {
  RngStream rng(1);
  EXPECT_THROW(rng.uniform_index(0), PreconditionError);
}

TEST(RngStream, NormalMomentsMatch) {
  RngStream rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngStream, NormalScaled) {
  RngStream rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(RngStream, ExponentialMeanMatches) {
  RngStream rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
  EXPECT_THROW(rng.exponential(0.0), PreconditionError);
}

TEST(RngStream, BernoulliFrequency) {
  RngStream rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_THROW(rng.bernoulli(1.5), PreconditionError);
}

TEST(SeedDerivation, StableAndLabelSensitive) {
  EXPECT_EQ(derive_seed(1, "a"), derive_seed(1, "a"));
  EXPECT_NE(derive_seed(1, "a"), derive_seed(1, "b"));
  EXPECT_NE(derive_seed(1, "a", 0), derive_seed(1, "a", 1));
  EXPECT_NE(derive_seed(1, "a"), derive_seed(2, "a"));
}

// ----------------------------------------------------------- Lambert W --

TEST(LambertW, SatisfiesDefiningEquation) {
  // W_{-1}(x) e^{W_{-1}(x)} = x over a log-spaced sweep of the domain.
  for (double x = -0.3678; x < -1e-10; x /= 1.7) {
    const double w = lambert_w_minus1(x);
    EXPECT_LE(w, -1.0);
    EXPECT_NEAR(w * std::exp(w), x, std::abs(x) * 1e-9) << "x=" << x;
  }
}

TEST(LambertW, BranchPoint) {
  EXPECT_NEAR(lambert_w_minus1(-1.0 / std::exp(1.0)), -1.0, 1e-6);
}

TEST(LambertW, KnownValue) {
  // W_{-1}(-2 e^{-2}) = -2 by construction.
  EXPECT_NEAR(lambert_w_minus1(-2.0 * std::exp(-2.0)), -2.0, 1e-9);
  EXPECT_NEAR(lambert_w_minus1(-5.0 * std::exp(-5.0)), -5.0, 1e-9);
}

TEST(LambertW, RejectsOutsideDomain) {
  EXPECT_THROW(lambert_w_minus1(0.0), PreconditionError);
  EXPECT_THROW(lambert_w_minus1(0.5), PreconditionError);
  EXPECT_THROW(lambert_w_minus1(-0.5), PreconditionError);
}

// ----------------------------------------------------------------- CSV --

TEST(Csv, ParsesPlainFields) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(Csv, ParsesQuotedFieldsWithCommasAndQuotes) {
  const auto fields = parse_csv_line(R"(x,"a,b","he said ""hi""")");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "a,b");
  EXPECT_EQ(fields[2], "he said \"hi\"");
}

TEST(Csv, ParsesEmptyFields) {
  const auto fields = parse_csv_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(Csv, StripsCarriageReturn) {
  const auto fields = parse_csv_line("a,b\r");
  EXPECT_EQ(fields[1], "b");
}

TEST(Csv, ToleratesCrlfLineEndings) {
  // Windows-exported event files: exactly one trailing \r per line, in
  // every position a final field can end — bare, empty, and quoted.
  EXPECT_EQ(parse_csv_line("a,b,c\r"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parse_csv_line("a,\r"), (std::vector<std::string>{"a", ""}));
  EXPECT_EQ(parse_csv_line("a,\"b\"\r"),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Csv, PreservesInteriorCarriageReturns) {
  // Only the line-terminating \r is CRLF noise; a \r inside a field (or a
  // quoted one) is data and must survive the round trip.
  EXPECT_EQ(parse_csv_line("a\rb,c\r"),
            (std::vector<std::string>{"a\rb", "c"}));
  EXPECT_EQ(parse_csv_line("\"a\rb\",c"),
            (std::vector<std::string>{"a\rb", "c"}));
}

TEST(Csv, ReadsCrlfStreams) {
  std::stringstream buffer("user,lat\r\nu1,45.5\r\n\r\nu2,46.0\r\n");
  const auto rows = read_csv(buffer);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"user", "lat"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"u1", "45.5"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"u2", "46.0"}));
}

TEST(Csv, RejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv_line("\"unterminated"), IoError);
}

TEST(Csv, RejectsEmbeddedNulBytes) {
  // A NUL can only arrive from binary garbage spliced into a text file;
  // it must fail loudly rather than silently terminating the field.
  const std::string nul_plain{"a,b\0c,d", 7};
  EXPECT_THROW(parse_csv_line(nul_plain), IoError);
  const std::string nul_quoted{"a,\"b\0c\"", 7};
  EXPECT_THROW(parse_csv_line(nul_quoted), IoError);
  const std::string nul_leading{"\0a,b", 4};
  EXPECT_THROW(parse_csv_line(nul_leading), IoError);
}

TEST(Csv, RejectsOverlongFields) {
  // A missing delimiter (or quote desync) turns the rest of a file into
  // one field; the cap stops that before it becomes a giant allocation.
  const std::string overlong(kMaxCsvFieldBytes + 1, 'x');
  EXPECT_THROW(parse_csv_line(overlong), IoError);
  EXPECT_THROW(parse_csv_line("ok," + overlong), IoError);
  EXPECT_THROW(parse_csv_line("\"" + overlong + "\""), IoError);
  // One byte under the cap still parses: the limit is on field length,
  // not line length.
  const std::string max_field(kMaxCsvFieldBytes - 1, 'y');
  const auto fields = parse_csv_line("a," + max_field);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1].size(), kMaxCsvFieldBytes - 1);
}

TEST(Csv, FormatQuotesOnlyWhenNeeded) {
  EXPECT_EQ(format_csv_line({"a", "b c", "d,e", "f\"g"}),
            "a,b c,\"d,e\",\"f\"\"g\"");
}

TEST(Csv, RoundTripThroughStreams) {
  const std::vector<std::vector<std::string>> rows{
      {"user", "lat", "note"},
      {"u1", "45.5", "plain"},
      {"u2", "46.1", "with,comma"},
  };
  std::stringstream buffer;
  write_csv(buffer, rows);
  EXPECT_EQ(read_csv(buffer), rows);
}

TEST(Csv, ReadSkipsBlankLines) {
  std::stringstream buffer("a,b\n\n\nc,d\n");
  EXPECT_EQ(read_csv(buffer).size(), 2u);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/definitely/missing.csv"), IoError);
}

// ------------------------------------------------------------- Options --

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--scale=0.5", "--verbose", "positional"};
  const Options options(4, argv);
  EXPECT_EQ(options.get_double("scale", 1.0), 0.5);
  EXPECT_TRUE(options.get_bool("verbose", false));
  ASSERT_EQ(options.positional().size(), 1u);
  EXPECT_EQ(options.positional()[0], "positional");
}

TEST(Options, FallsBackToDefaults) {
  const Options options;
  EXPECT_EQ(options.get_string("missing", "dft"), "dft");
  EXPECT_EQ(options.get_int("missing", 7), 7);
  EXPECT_FALSE(options.get_bool("missing", false));
}

TEST(Options, EnvironmentFallback) {
  ::setenv("MOOD_TEST_OPTION_X", "42", 1);
  const Options options;
  EXPECT_EQ(options.get_int("test-option-x", 0), 42);
  ::unsetenv("MOOD_TEST_OPTION_X");
}

TEST(Options, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--count=abc", "--ratio=1.2.3", "--flag=maybe"};
  const Options options(4, argv);
  EXPECT_THROW(static_cast<void>(options.get_int("count", 0)),
               PreconditionError);
  EXPECT_THROW(static_cast<void>(options.get_double("ratio", 0.0)),
               PreconditionError);
  EXPECT_THROW(static_cast<void>(options.get_bool("flag", false)),
               PreconditionError);
}

TEST(Options, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=0", "--c=false"};
  const Options options(4, argv);
  EXPECT_TRUE(options.get_bool("a", false));
  EXPECT_FALSE(options.get_bool("b", true));
  EXPECT_FALSE(options.get_bool("c", true));
}

TEST(Options, ExposesCommandLineKeys) {
  const char* argv[] = {"prog", "--beta=1", "--alpha", "pos"};
  const Options options(4, argv);
  EXPECT_EQ(options.keys(), (std::vector<std::string>{"alpha", "beta"}));
}

// --------------------------------------------------------------- FlagSet --

FlagSet make_flags() {
  FlagSet flags("prog test", "A test command.");
  flags.add_string("name", "default-name", "a string");
  flags.add_double("ratio", 0.5, "a number");
  flags.add_int("count", 4, "an integer");
  flags.add_bool("fast", false, "a boolean");
  return flags;
}

TEST(FlagSet, DefaultsAndOverrides) {
  FlagSet flags = make_flags();
  const char* argv[] = {"prog", "--ratio=0.75", "--fast", "input.csv"};
  flags.parse(4, argv);
  EXPECT_EQ(flags.get_string("name"), "default-name");
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.75);
  EXPECT_EQ(flags.get_int("count"), 4);
  EXPECT_TRUE(flags.get_bool("fast"));
  EXPECT_FALSE(flags.get_bool("help"));  // auto-registered
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
}

TEST(FlagSet, RejectsUnknownFlag) {
  FlagSet flags = make_flags();
  const char* argv[] = {"prog", "--typo=1"};
  EXPECT_THROW(flags.parse(2, argv), UsageError);
}

TEST(FlagSet, RejectsMistypedValueAtParseTime) {
  FlagSet flags = make_flags();
  const char* argv[] = {"prog", "--count=three"};
  EXPECT_THROW(flags.parse(2, argv), UsageError);
}

TEST(FlagSet, RejectsDuplicateDeclaration) {
  FlagSet flags = make_flags();
  EXPECT_THROW(flags.add_int("count", 1, "again"), PreconditionError);
}

TEST(FlagSet, UndeclaredAccessIsLoud) {
  FlagSet flags = make_flags();
  flags.parse(0, nullptr);
  EXPECT_THROW(static_cast<void>(flags.get_int("never-declared")),
               PreconditionError);
  // Wrong-type access of a declared flag is also a programming error.
  EXPECT_THROW(static_cast<void>(flags.get_int("name")), PreconditionError);
}

TEST(FlagSet, HelpListsEveryFlagWithDefault) {
  const FlagSet flags = make_flags();
  const std::string help = flags.help();
  EXPECT_NE(help.find("usage: prog test"), std::string::npos);
  EXPECT_NE(help.find("--name=<string>"), std::string::npos);
  EXPECT_NE(help.find("default: default-name"), std::string::npos);
  EXPECT_NE(help.find("--ratio=<number>"), std::string::npos);
  EXPECT_NE(help.find("default: 0.5"), std::string::npos);
  EXPECT_NE(help.find("--count=<int>"), std::string::npos);
  EXPECT_NE(help.find("--fast"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(FlagSet, EnvironmentFallbackStillApplies) {
  ::setenv("MOOD_RATIO", "0.25", 1);
  FlagSet flags = make_flags();
  flags.parse(0, nullptr);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio"), 0.25);
  ::unsetenv("MOOD_RATIO");
}

TEST(FlagSet, DoubleDefaultKeepsFullPrecision) {
  // The default must survive exactly, not through a 6-decimal text render.
  FlagSet flags("prog", "precision");
  flags.add_double("epsilon", 1e-7, "tiny");
  flags.parse(0, nullptr);
  EXPECT_DOUBLE_EQ(flags.get_double("epsilon"), 1e-7);
  EXPECT_NE(flags.help().find("1e-07"), std::string::npos) << flags.help();
}

TEST(FlagSet, RejectPositionalsThrowsUsageError) {
  FlagSet flags = make_flags();
  const char* argv[] = {"prog", "--fast", "stray.csv"};
  flags.parse(3, argv);
  EXPECT_THROW(flags.reject_positionals(), UsageError);
  FlagSet clean = make_flags();
  clean.parse(0, nullptr);
  EXPECT_NO_THROW(clean.reject_positionals());
}

// --------------------------------------------------------- Thread pool --

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, HandlesZeroAndOneIteration) {
  std::atomic<int> count{0};
  parallel_for(0, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 0);
  parallel_for(1, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::size_t i) {
                     if (i == 50) throw std::runtime_error("halt");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, NestedCallsDegradeGracefully) {
  std::atomic<int> counter{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) { counter++; });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelFor, RespectsGrainParameter) {
  std::atomic<int> counter{0};
  parallel_for(1000, [&](std::size_t) { counter++; }, 128);
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ConfigureSharedAfterFirstUseFailsLoudly) {
  // The shared pool is built lazily on first use and can never be resized
  // afterwards: late reconfiguration (e.g. a --jobs flag parsed after
  // parallel work already ran) must throw instead of being silently
  // ignored. Touch the pool first so this regression test is independent
  // of suite ordering.
  ThreadPool::shared();
  EXPECT_THROW(ThreadPool::configure_shared(2), PreconditionError);
  EXPECT_THROW(ThreadPool::configure_shared(0), PreconditionError);
}

// ------------------------------------------------------------- Logging --

TEST(Logging, LevelFilteringIsMonotone) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kOff);
  log_error("this must not crash even when off");
  set_log_level(saved);
}

// --------------------------------------------------------------- Error --

TEST(Error, HierarchyCatchable) {
  EXPECT_THROW(expects(false, "msg"), PreconditionError);
  EXPECT_THROW(ensures(false, "msg"), LogicError);
  try {
    expects(false, "precondition text");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("precondition text"),
              std::string::npos);
  }
  EXPECT_NO_THROW(expects(true, "fine"));
  EXPECT_NO_THROW(ensures(true, "fine"));
}

}  // namespace
}  // namespace mood::support
