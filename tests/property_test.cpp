// Property-based and parameterised suites (TEST_P sweeps) over the
// library's core invariants: composition counting, trace splitting,
// Geo-I noise laws, Topsoe divergence axioms and STD behaviour under
// random inputs.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lppm/composition.h"
#include "lppm/geo_ind.h"
#include "metrics/distortion.h"
#include "profiles/heatmap.h"
#include "support/rng.h"
#include "test_helpers.h"

namespace mood {
namespace {

using mobility::Record;
using mobility::Timestamp;
using mobility::Trace;
using support::RngStream;

/// Random walk trace of n records starting at t0.
Trace random_trace(RngStream& rng, std::size_t n, Timestamp t0 = 0) {
  std::vector<Record> records;
  geo::GeoPoint p{45.0 + rng.uniform(-0.2, 0.2), 5.0 + rng.uniform(-0.2, 0.2)};
  Timestamp t = t0;
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(Record{p, t});
    p = geo::destination(p, rng.uniform(0.0, 2.0 * geo::kPi),
                         rng.uniform(0.0, 400.0));
    t += static_cast<Timestamp>(rng.uniform(30.0, 900.0));
  }
  return Trace("rw", std::move(records));
}

// ------------------------------------------ composition count property --

class CompositionCountProperty : public ::testing::TestWithParam<int> {};

TEST_P(CompositionCountProperty, EnumerationMatchesClosedForm) {
  const int n = GetParam();
  std::vector<std::unique_ptr<testing::ShiftLppm>> owned;
  std::vector<const lppm::Lppm*> singles;
  for (int i = 0; i < n; ++i) {
    owned.push_back(std::make_unique<testing::ShiftLppm>(
        "L" + std::to_string(i), i + 1.0));
    singles.push_back(owned.back().get());
  }
  const auto all = lppm::enumerate_compositions(singles, 1, singles.size());
  EXPECT_EQ(all.size(), lppm::composition_count(n, 1, n));

  // All emitted compositions are distinct orderings of distinct stages.
  std::set<std::string> names;
  for (const auto& comp : all) {
    names.insert(comp.name());
    std::set<const lppm::Lppm*> stages(comp.stages().begin(),
                                       comp.stages().end());
    EXPECT_EQ(stages.size(), comp.length()) << "repeated stage in "
                                            << comp.name();
  }
  EXPECT_EQ(names.size(), all.size());
}

INSTANTIATE_TEST_SUITE_P(NFromOneToFive, CompositionCountProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------ slicing is a partition --

class SlicingProperty : public ::testing::TestWithParam<int> {};

TEST_P(SlicingProperty, SlicesPartitionAndPreserveOrder) {
  RngStream rng(GetParam());
  const Trace trace = random_trace(rng, 200 + rng.uniform_index(200));
  const Timestamp slice_len =
      static_cast<Timestamp>(rng.uniform(600.0, 8.0 * 3600.0));
  const auto slices = trace.slices(slice_len);

  std::size_t total = 0;
  Timestamp previous_end = std::numeric_limits<Timestamp>::min();
  for (const auto& slice : slices) {
    ASSERT_FALSE(slice.empty());
    EXPECT_LT(slice.duration(), slice_len);
    EXPECT_GT(slice.front().time, previous_end);
    previous_end = slice.back().time;
    total += slice.size();
  }
  EXPECT_EQ(total, trace.size());
}

TEST_P(SlicingProperty, SplitInHalfPartitions) {
  RngStream rng(GetParam() + 1000);
  const Trace trace = random_trace(rng, 50 + rng.uniform_index(300));
  const auto [left, right] = trace.split_in_half();
  EXPECT_EQ(left.size() + right.size(), trace.size());
  if (!left.empty() && !right.empty()) {
    EXPECT_LE(left.back().time, right.front().time);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlicingProperty,
                         ::testing::Range(1, 13));

// ----------------------------------------------------- Geo-I noise law --

class GeoIProperty : public ::testing::TestWithParam<double> {};

TEST_P(GeoIProperty, MeanRadiusIsTwoOverEpsilon) {
  const double epsilon = GetParam();
  const lppm::GeoIndistinguishability geoi(epsilon);
  RngStream rng(7);
  const int n = 40000;
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += geoi.sample_radius_m(rng);
  const double expected = 2.0 / epsilon;
  EXPECT_NEAR(total / n, expected, expected * 0.03) << "eps=" << epsilon;
}

TEST_P(GeoIProperty, RadiiAreNonNegative) {
  const lppm::GeoIndistinguishability geoi(GetParam());
  RngStream rng(8);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(geoi.sample_radius_m(rng), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(EpsilonSweep, GeoIProperty,
                         ::testing::Values(0.001, 0.005, 0.01, 0.05, 0.1));

// ------------------------------------------------------ Topsoe axioms --

class TopsoeProperty : public ::testing::TestWithParam<int> {};

profiles::Heatmap random_heatmap(RngStream& rng, int cells) {
  profiles::Heatmap map;
  for (int i = 0; i < cells; ++i) {
    map.add(geo::CellIndex{static_cast<int>(rng.uniform_index(12)),
                           static_cast<int>(rng.uniform_index(12))},
            rng.uniform(0.5, 20.0));
  }
  return map;
}

TEST_P(TopsoeProperty, SymmetricNonNegativeBounded) {
  RngStream rng(GetParam());
  const auto a = random_heatmap(rng, 8 + static_cast<int>(rng.uniform_index(20)));
  const auto b = random_heatmap(rng, 8 + static_cast<int>(rng.uniform_index(20)));
  const double ab = profiles::topsoe_divergence(a, b);
  const double ba = profiles::topsoe_divergence(b, a);
  EXPECT_NEAR(ab, ba, 1e-9);
  EXPECT_GE(ab, -1e-12);
  EXPECT_LE(ab, 2.0 * std::log(2.0) + 1e-9);
  EXPECT_NEAR(profiles::topsoe_divergence(a, a), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopsoeProperty, ::testing::Range(1, 17));

// ------------------------------------------------------- STD properties --

class StdProperty : public ::testing::TestWithParam<int> {};

TEST_P(StdProperty, IdentityZeroShiftExactSubsetZero) {
  RngStream rng(GetParam());
  const Trace trace = random_trace(rng, 100);
  EXPECT_NEAR(metrics::spatial_temporal_distortion(trace, trace), 0.0, 1e-9);

  // A temporal subset of the original projects exactly onto itself.
  const Trace subset = trace.between(trace.front().time,
                                     trace.front().time +
                                         trace.duration() / 2);
  if (!subset.empty()) {
    EXPECT_NEAR(metrics::spatial_temporal_distortion(trace, subset), 0.0,
                1e-9);
  }

  // Uniform shifts are recovered exactly.
  const double shift = rng.uniform(50.0, 3000.0);
  std::vector<Record> moved;
  for (const auto& r : trace.records()) {
    moved.push_back(Record{geo::destination(r.position, 0.0, shift), r.time});
  }
  EXPECT_NEAR(
      metrics::spatial_temporal_distortion(trace, Trace("s", std::move(moved))),
      shift, shift * 0.01 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StdProperty, ::testing::Range(1, 13));

// ----------------------------------------- RNG stream fork independence --

class RngForkProperty : public ::testing::TestWithParam<int> {};

TEST_P(RngForkProperty, SiblingsUncorrelated) {
  const RngStream root(GetParam() * 7919);
  RngStream a = root.fork("left");
  RngStream b = root.fork("right");
  int matches = 0;
  for (int i = 0; i < 256; ++i) matches += (a.next() == b.next());
  EXPECT_LE(matches, 2);
}

TEST_P(RngForkProperty, IndexedForksAllDistinct) {
  const RngStream root(GetParam());
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 64; ++i) {
    firsts.insert(root.fork("stream", i).next());
  }
  EXPECT_EQ(firsts.size(), 64u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngForkProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace mood
