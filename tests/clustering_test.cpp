// Unit tests for POI extraction (stay-point clustering) and the visit
// sequence used by the MMC profile.

#include <gtest/gtest.h>

#include "clustering/incremental_stays.h"
#include "clustering/poi_extraction.h"
#include "geo/geo.h"
#include "support/error.h"
#include "test_helpers.h"

namespace mood::clustering {
namespace {

using geo::GeoPoint;
using mobility::kHour;
using mobility::kMinute;
using mobility::Trace;
using testing::dwell;
using testing::rec;
using testing::trace_of;

const GeoPoint kHome{45.7640, 4.8357};
const GeoPoint kWork{45.7800, 4.8700};  // ~3.2 km away

TEST(PoiExtraction, FindsSingleDwell) {
  // 2 hours parked at home, sampled every 5 minutes.
  const Trace trace = trace_of("u", {dwell(kHome, 0, 25)});
  const auto pois = extract_pois(trace);
  ASSERT_EQ(pois.size(), 1u);
  EXPECT_NEAR(geo::haversine_m(pois[0].center, kHome), 0.0, 1.0);
  EXPECT_EQ(pois[0].record_count, 25u);
  EXPECT_GE(pois[0].dwell, 2 * kHour);
}

TEST(PoiExtraction, ShortStayIsNotAPoi) {
  // Only 30 minutes at home: below the 1 h dwell threshold.
  const Trace trace = trace_of("u", {dwell(kHome, 0, 7)});
  EXPECT_TRUE(extract_pois(trace).empty());
}

TEST(PoiExtraction, TwoDwellsWithTravelBetween) {
  std::vector<mobility::Record> records = dwell(kHome, 0, 15);
  // Travel: a few records strung along the way (fast, no dwell).
  for (int i = 1; i <= 5; ++i) {
    const double f = i / 6.0;
    records.push_back(rec(kHome.lat + f * (kWork.lat - kHome.lat),
                          kHome.lon + f * (kWork.lon - kHome.lon),
                          15 * 5 * kMinute + i * kMinute));
  }
  auto work_dwell = dwell(kWork, 2 * kHour, 15);
  records.insert(records.end(), work_dwell.begin(), work_dwell.end());
  const Trace trace("u", std::move(records));

  const auto pois = extract_pois(trace);
  ASSERT_EQ(pois.size(), 2u);
  EXPECT_NEAR(geo::haversine_m(pois[0].center, kHome), 0.0, 5.0);
  EXPECT_NEAR(geo::haversine_m(pois[1].center, kWork), 0.0, 5.0);
  EXPECT_LT(pois[0].end, pois[1].start);
}

TEST(PoiExtraction, JitterWithinDiameterStillClusters) {
  // 25 records wobbling ~60 m around home: one POI, centred on home.
  std::vector<mobility::Record> records;
  for (int i = 0; i < 25; ++i) {
    const double bearing = i * 0.7;
    const GeoPoint p = geo::destination(kHome, bearing, 60.0);
    records.push_back(mobility::Record{p, i * 5 * kMinute});
  }
  const Trace trace("u", std::move(records));
  const auto pois = extract_pois(trace);
  ASSERT_EQ(pois.size(), 1u);
  EXPECT_NEAR(geo::haversine_m(pois[0].center, kHome), 0.0, 40.0);
}

TEST(PoiExtraction, WideWanderBreaksCluster) {
  // Successive records 400 m apart (beyond the 200 m diameter): no POI.
  std::vector<mobility::Record> records;
  GeoPoint p = kHome;
  for (int i = 0; i < 30; ++i) {
    records.push_back(mobility::Record{p, i * 10 * kMinute});
    p = geo::destination(p, 0.5, 400.0);
  }
  EXPECT_TRUE(extract_pois(Trace("u", std::move(records))).empty());
}

TEST(PoiExtraction, DiameterParameterControlsClustering) {
  // The same wandering trace clusters under a huge diameter.
  std::vector<mobility::Record> records;
  GeoPoint p = kHome;
  for (int i = 0; i < 30; ++i) {
    records.push_back(mobility::Record{p, i * 10 * kMinute});
    p = geo::destination(p, 0.5, 400.0);
  }
  PoiParams params;
  params.max_diameter_m = 50000.0;
  const auto pois = extract_pois(Trace("u", std::move(records)), params);
  EXPECT_EQ(pois.size(), 1u);
}

TEST(PoiExtraction, EmptyTraceYieldsNoPois) {
  EXPECT_TRUE(extract_pois(Trace("u", {})).empty());
}

TEST(PoiExtraction, ValidatesParameters) {
  const Trace trace = trace_of("u", {dwell(kHome, 0, 5)});
  PoiParams bad_diameter;
  bad_diameter.max_diameter_m = 0.0;
  EXPECT_THROW(extract_pois(trace, bad_diameter),
               support::PreconditionError);
  PoiParams bad_dwell;
  bad_dwell.min_dwell = 0;
  EXPECT_THROW(extract_pois(trace, bad_dwell), support::PreconditionError);
}

TEST(VisitSequence, MergesRepeatVisitsToSamePlace) {
  // home -> work -> home: two distinct states, three visits.
  std::vector<mobility::Record> records = dwell(kHome, 0, 15);
  auto w = dwell(kWork, 2 * kHour, 15);
  records.insert(records.end(), w.begin(), w.end());
  auto h2 = dwell(kHome, 4 * kHour, 15);
  records.insert(records.end(), h2.begin(), h2.end());
  const auto pois = extract_pois(Trace("u", std::move(records)));
  ASSERT_EQ(pois.size(), 3u);

  const auto seq = build_visit_sequence(pois, 200.0);
  EXPECT_EQ(seq.states.size(), 2u);
  ASSERT_EQ(seq.visits.size(), 3u);
  EXPECT_EQ(seq.visits[0], seq.visits[2]);  // both home
  EXPECT_NE(seq.visits[0], seq.visits[1]);
  // Merged home state accumulated both dwells.
  EXPECT_EQ(seq.states[seq.visits[0]].record_count, 30u);
}

TEST(VisitSequence, ZeroMergeDistanceKeepsAllStates) {
  std::vector<Poi> pois(3);
  pois[0].center = kHome;
  pois[1].center = geo::destination(kHome, 0.0, 10.0);
  pois[2].center = kWork;
  for (auto& p : pois) p.record_count = 1;
  const auto seq = build_visit_sequence(pois, 0.0);
  EXPECT_EQ(seq.states.size(), 3u);
}

TEST(VisitSequence, WeightedCentroidOnMerge) {
  Poi a;
  a.center = kHome;
  a.record_count = 30;
  Poi b;
  b.center = geo::destination(kHome, 0.0, 100.0);
  b.record_count = 10;
  const auto seq = build_visit_sequence({a, b}, 200.0);
  ASSERT_EQ(seq.states.size(), 1u);
  // Centroid should sit 25 m north of home (10/40 of the 100 m gap).
  EXPECT_NEAR(geo::haversine_m(seq.states[0].center, kHome), 25.0, 2.0);
  EXPECT_EQ(seq.states[0].record_count, 40u);
}

// ---------------------------------------------- origin-pinned overload --

TEST(PoiExtraction, ExplicitOriginDefaultsToTraceFront) {
  const Trace trace = trace_of("u", {dwell(kHome, 0, 25)});
  const auto implicit = extract_pois(trace);
  const auto explicit_origin =
      extract_pois(trace, PoiParams{}, trace.front().position);
  ASSERT_EQ(implicit.size(), explicit_origin.size());
  for (std::size_t i = 0; i < implicit.size(); ++i) {
    EXPECT_EQ(implicit[i].center.lat, explicit_origin[i].center.lat);
    EXPECT_EQ(implicit[i].center.lon, explicit_origin[i].center.lon);
    EXPECT_EQ(implicit[i].record_count, explicit_origin[i].record_count);
  }
}

// --------------------------------------------------------- StayTracker --

/// The tracker's maintained POI list must equal the origin-pinned
/// one-shot extraction after every update, whatever the chunking.
void expect_tracker_matches(const StayTracker& tracker, const Trace& window) {
  const auto expected =
      extract_pois(window, tracker.params(), tracker.origin());
  const auto actual = tracker.pois();
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].center.lat, expected[i].center.lat);
    EXPECT_EQ(actual[i].center.lon, expected[i].center.lon);
    EXPECT_EQ(actual[i].record_count, expected[i].record_count);
    EXPECT_EQ(actual[i].start, expected[i].start);
    EXPECT_EQ(actual[i].end, expected[i].end);
  }
}

TEST(StayTracker, AppendOnlyMatchesOneShotExtraction) {
  std::vector<mobility::Record> records = dwell(kHome, 0, 20);
  auto work = dwell(kWork, 3 * kHour, 20);
  records.insert(records.end(), work.begin(), work.end());
  auto back_home = dwell(kHome, 7 * kHour, 15);
  records.insert(records.end(), back_home.begin(), back_home.end());

  Trace window("u", {});
  StayTracker tracker{PoiParams{}};
  for (const auto& record : records) {
    window.append(record);
    tracker.update(window, 1, 0);
    expect_tracker_matches(tracker, window);
  }
  EXPECT_EQ(tracker.rebuilds(), 0u);  // appends never rebuild
  EXPECT_GT(tracker.final_count(), 0u);
}

TEST(StayTracker, CleanFrontEvictionDropsWholeStays) {
  // Two separated stays; evicting exactly the first one is a clean prefix
  // drop (the boundary is an anchor), not a rebuild.
  std::vector<mobility::Record> records = dwell(kHome, 0, 20);
  auto work = dwell(kWork, 3 * kHour, 20);
  records.insert(records.end(), work.begin(), work.end());
  Trace window("u", std::move(records));
  StayTracker tracker{PoiParams{}};
  tracker.update(window, window.size(), 0);
  ASSERT_EQ(tracker.final_count(), 1u);  // home closed, work still open
  const auto rebuilds_before = tracker.rebuilds();

  window.drop_front(20);
  tracker.update(window, 0, 20);
  EXPECT_EQ(tracker.rebuilds(), rebuilds_before);
  expect_tracker_matches(tracker, window);
}

TEST(StayTracker, StaySplittingEvictionFallsBackToRebuild) {
  std::vector<mobility::Record> records = dwell(kHome, 0, 20);
  auto work = dwell(kWork, 3 * kHour, 20);
  records.insert(records.end(), work.begin(), work.end());
  auto leisure =
      dwell(geo::destination(kWork, 1.0, 5000.0), 6 * kHour, 20);
  records.insert(records.end(), leisure.begin(), leisure.end());
  Trace window("u", std::move(records));
  StayTracker tracker{PoiParams{}};
  tracker.update(window, window.size(), 0);
  ASSERT_GE(tracker.final_count(), 2u);

  // Cut into the middle of the first (home) stay: the remainder of that
  // stay re-groups, so the tracker must re-extract — and still match the
  // origin-pinned one-shot oracle exactly.
  window.drop_front(7);
  tracker.update(window, 0, 7);
  EXPECT_EQ(tracker.rebuilds(), 1u);
  expect_tracker_matches(tracker, window);
}

TEST(StayTracker, ChunkedAndBulkUpdatesConverge) {
  std::vector<mobility::Record> records = dwell(kHome, 0, 30);
  auto work = dwell(kWork, 4 * kHour, 30);
  records.insert(records.end(), work.begin(), work.end());

  // Bulk: one update over the full trace.
  Trace bulk_window("u", records);
  StayTracker bulk{PoiParams{}};
  bulk.update(bulk_window, bulk_window.size(), 0);

  // Chunked: jagged increments.
  Trace window("u", {});
  StayTracker chunked{PoiParams{}};
  std::size_t i = 0;
  for (const std::size_t step : {1u, 7u, 3u, 19u, 11u, 30u, 60u}) {
    const std::size_t n = std::min(step, records.size() - i);
    for (std::size_t k = 0; k < n; ++k) window.append(records[i + k]);
    chunked.update(window, n, 0);
    i += n;
    if (i == records.size()) break;
  }
  ASSERT_EQ(i, records.size());
  expect_tracker_matches(chunked, window);
  const auto a = bulk.pois();
  const auto b = chunked.pois();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].center.lat, b[p].center.lat);
    EXPECT_EQ(a[p].center.lon, b[p].center.lon);
  }
}

TEST(StayTracker, EmptyWindowAndDeltaValidation) {
  Trace window("u", {});
  StayTracker tracker{PoiParams{}};
  tracker.update(window, 0, 0);
  EXPECT_TRUE(tracker.pois().empty());
  EXPECT_FALSE(tracker.has_origin());
  // Deltas must reconcile with the window size.
  window.append(rec(kHome.lat, kHome.lon, 0));
  EXPECT_THROW(tracker.update(window, 2, 0), support::PreconditionError);
}

}  // namespace
}  // namespace mood::clustering
