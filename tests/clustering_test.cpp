// Unit tests for POI extraction (stay-point clustering) and the visit
// sequence used by the MMC profile.

#include <gtest/gtest.h>

#include "clustering/poi_extraction.h"
#include "geo/geo.h"
#include "support/error.h"
#include "test_helpers.h"

namespace mood::clustering {
namespace {

using geo::GeoPoint;
using mobility::kHour;
using mobility::kMinute;
using mobility::Trace;
using testing::dwell;
using testing::rec;
using testing::trace_of;

const GeoPoint kHome{45.7640, 4.8357};
const GeoPoint kWork{45.7800, 4.8700};  // ~3.2 km away

TEST(PoiExtraction, FindsSingleDwell) {
  // 2 hours parked at home, sampled every 5 minutes.
  const Trace trace = trace_of("u", {dwell(kHome, 0, 25)});
  const auto pois = extract_pois(trace);
  ASSERT_EQ(pois.size(), 1u);
  EXPECT_NEAR(geo::haversine_m(pois[0].center, kHome), 0.0, 1.0);
  EXPECT_EQ(pois[0].record_count, 25u);
  EXPECT_GE(pois[0].dwell, 2 * kHour);
}

TEST(PoiExtraction, ShortStayIsNotAPoi) {
  // Only 30 minutes at home: below the 1 h dwell threshold.
  const Trace trace = trace_of("u", {dwell(kHome, 0, 7)});
  EXPECT_TRUE(extract_pois(trace).empty());
}

TEST(PoiExtraction, TwoDwellsWithTravelBetween) {
  std::vector<mobility::Record> records = dwell(kHome, 0, 15);
  // Travel: a few records strung along the way (fast, no dwell).
  for (int i = 1; i <= 5; ++i) {
    const double f = i / 6.0;
    records.push_back(rec(kHome.lat + f * (kWork.lat - kHome.lat),
                          kHome.lon + f * (kWork.lon - kHome.lon),
                          15 * 5 * kMinute + i * kMinute));
  }
  auto work_dwell = dwell(kWork, 2 * kHour, 15);
  records.insert(records.end(), work_dwell.begin(), work_dwell.end());
  const Trace trace("u", std::move(records));

  const auto pois = extract_pois(trace);
  ASSERT_EQ(pois.size(), 2u);
  EXPECT_NEAR(geo::haversine_m(pois[0].center, kHome), 0.0, 5.0);
  EXPECT_NEAR(geo::haversine_m(pois[1].center, kWork), 0.0, 5.0);
  EXPECT_LT(pois[0].end, pois[1].start);
}

TEST(PoiExtraction, JitterWithinDiameterStillClusters) {
  // 25 records wobbling ~60 m around home: one POI, centred on home.
  std::vector<mobility::Record> records;
  for (int i = 0; i < 25; ++i) {
    const double bearing = i * 0.7;
    const GeoPoint p = geo::destination(kHome, bearing, 60.0);
    records.push_back(mobility::Record{p, i * 5 * kMinute});
  }
  const Trace trace("u", std::move(records));
  const auto pois = extract_pois(trace);
  ASSERT_EQ(pois.size(), 1u);
  EXPECT_NEAR(geo::haversine_m(pois[0].center, kHome), 0.0, 40.0);
}

TEST(PoiExtraction, WideWanderBreaksCluster) {
  // Successive records 400 m apart (beyond the 200 m diameter): no POI.
  std::vector<mobility::Record> records;
  GeoPoint p = kHome;
  for (int i = 0; i < 30; ++i) {
    records.push_back(mobility::Record{p, i * 10 * kMinute});
    p = geo::destination(p, 0.5, 400.0);
  }
  EXPECT_TRUE(extract_pois(Trace("u", std::move(records))).empty());
}

TEST(PoiExtraction, DiameterParameterControlsClustering) {
  // The same wandering trace clusters under a huge diameter.
  std::vector<mobility::Record> records;
  GeoPoint p = kHome;
  for (int i = 0; i < 30; ++i) {
    records.push_back(mobility::Record{p, i * 10 * kMinute});
    p = geo::destination(p, 0.5, 400.0);
  }
  PoiParams params;
  params.max_diameter_m = 50000.0;
  const auto pois = extract_pois(Trace("u", std::move(records)), params);
  EXPECT_EQ(pois.size(), 1u);
}

TEST(PoiExtraction, EmptyTraceYieldsNoPois) {
  EXPECT_TRUE(extract_pois(Trace("u", {})).empty());
}

TEST(PoiExtraction, ValidatesParameters) {
  const Trace trace = trace_of("u", {dwell(kHome, 0, 5)});
  PoiParams bad_diameter;
  bad_diameter.max_diameter_m = 0.0;
  EXPECT_THROW(extract_pois(trace, bad_diameter),
               support::PreconditionError);
  PoiParams bad_dwell;
  bad_dwell.min_dwell = 0;
  EXPECT_THROW(extract_pois(trace, bad_dwell), support::PreconditionError);
}

TEST(VisitSequence, MergesRepeatVisitsToSamePlace) {
  // home -> work -> home: two distinct states, three visits.
  std::vector<mobility::Record> records = dwell(kHome, 0, 15);
  auto w = dwell(kWork, 2 * kHour, 15);
  records.insert(records.end(), w.begin(), w.end());
  auto h2 = dwell(kHome, 4 * kHour, 15);
  records.insert(records.end(), h2.begin(), h2.end());
  const auto pois = extract_pois(Trace("u", std::move(records)));
  ASSERT_EQ(pois.size(), 3u);

  const auto seq = build_visit_sequence(pois, 200.0);
  EXPECT_EQ(seq.states.size(), 2u);
  ASSERT_EQ(seq.visits.size(), 3u);
  EXPECT_EQ(seq.visits[0], seq.visits[2]);  // both home
  EXPECT_NE(seq.visits[0], seq.visits[1]);
  // Merged home state accumulated both dwells.
  EXPECT_EQ(seq.states[seq.visits[0]].record_count, 30u);
}

TEST(VisitSequence, ZeroMergeDistanceKeepsAllStates) {
  std::vector<Poi> pois(3);
  pois[0].center = kHome;
  pois[1].center = geo::destination(kHome, 0.0, 10.0);
  pois[2].center = kWork;
  for (auto& p : pois) p.record_count = 1;
  const auto seq = build_visit_sequence(pois, 0.0);
  EXPECT_EQ(seq.states.size(), 3u);
}

TEST(VisitSequence, WeightedCentroidOnMerge) {
  Poi a;
  a.center = kHome;
  a.record_count = 30;
  Poi b;
  b.center = geo::destination(kHome, 0.0, 100.0);
  b.record_count = 10;
  const auto seq = build_visit_sequence({a, b}, 200.0);
  ASSERT_EQ(seq.states.size(), 1u);
  // Centroid should sit 25 m north of home (10/40 of the 100 m gap).
  EXPECT_NEAR(geo::haversine_m(seq.states[0].center, kHome), 25.0, 2.0);
  EXPECT_EQ(seq.states[0].record_count, 40u);
}

}  // namespace
}  // namespace mood::clustering
