// Mock-driven tests of Algorithm 1: the MooD engine's single pass,
// composition pass, best-utility selection, fine-grained recursion, the
// delta floor, id renewal and the crowdsensing pre-slicing mode.
//
// The mocks make the control flow directly observable: ShiftLppm displaces
// traces north by a fixed amount (displacements add up under composition,
// STD equals the total shift), and FakeAttack re-identifies the owner
// whenever a predicate on the observed trace holds.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "decision/mood_engine.h"
#include "lppm/composition.h"
#include "metrics/distortion.h"
#include "support/error.h"
#include "test_helpers.h"

namespace mood::decision {
namespace {

using mobility::kHour;
using mobility::Timestamp;
using mobility::Trace;
using testing::FakeAttack;
using testing::rec;
using testing::ShiftLppm;

/// Original (unshifted) latitude of the test traces; the oracles below
/// measure displacement against it.
constexpr double kBaseLat = 45.0;

double shift_of(const Trace& trace) {
  if (trace.empty()) return 0.0;
  double mean_lat = 0.0;
  for (const auto& r : trace.records()) mean_lat += r.position.lat;
  mean_lat /= static_cast<double>(trace.size());
  return geo::deg_to_rad(mean_lat - kBaseLat) * geo::kEarthRadiusM;
}

/// Attack that re-identifies the owner unless the trace moved at least
/// `threshold_m` north of its true position.
FakeAttack::Oracle catches_below(double threshold_m) {
  return [threshold_m](const Trace& trace) -> std::optional<mobility::UserId> {
    if (shift_of(trace) < threshold_m) {
      // Mocks assume the single test user "victim".
      return mobility::UserId("victim");
    }
    return std::nullopt;
  };
}

/// A 24-hour trace for user "victim", one record per 30 min at kBaseLat.
Trace day_trace() {
  std::vector<mobility::Record> records;
  for (Timestamp t = 0; t < 24 * kHour; t += kHour / 2) {
    records.push_back(rec(kBaseLat, 5.0, t));
  }
  return Trace("victim", std::move(records));
}

class EngineTest : public ::testing::Test {
 protected:
  MoodEngine make_engine(std::vector<const lppm::Lppm*> singles,
                         std::vector<const attacks::Attack*> attack_views,
                         MoodConfig config = {}) {
    return MoodEngine(std::move(singles),
                      lppm::enumerate_compositions(singles_, 2,
                                                   singles_.size()),
                      std::move(attack_views), &metric_, config);
  }

  // Shifts: A = 60 m, B = 100 m, C = 150 m.
  ShiftLppm a_{"A", 60.0};
  ShiftLppm b_{"B", 100.0};
  ShiftLppm c_{"C", 150.0};
  std::vector<const lppm::Lppm*> singles_{&a_, &b_, &c_};
  metrics::SpatialTemporalDistortion metric_;
};

TEST_F(EngineTest, SinglePassPicksLowestDistortionProtectiveLppm) {
  // Threshold 80 m: B (100) and C (150) protect; A (60) does not.
  FakeAttack attack("fake", catches_below(80.0));
  const std::vector<const attacks::Attack*> attacks{&attack};
  const auto engine = make_engine(singles_, attacks);

  const auto candidate = engine.search(day_trace());
  ASSERT_TRUE(candidate.has_value());
  EXPECT_EQ(candidate->level, ProtectionLevel::kSingle);
  EXPECT_EQ(candidate->lppm, "B");  // argmin STD among protective singles
  EXPECT_NEAR(candidate->distortion, 100.0, 1.0);
}

TEST_F(EngineTest, CompositionPassRunsOnlyWhenSinglesFail) {
  // Threshold 200 m: no single protects (max 150). Compositions reach
  // 160..310; best utility = lowest total shift >= 200, i.e. A+C = 210.
  FakeAttack attack("fake", catches_below(200.0));
  const std::vector<const attacks::Attack*> attacks{&attack};
  const auto engine = make_engine(singles_, attacks);

  const auto candidate = engine.search(day_trace());
  ASSERT_TRUE(candidate.has_value());
  EXPECT_EQ(candidate->level, ProtectionLevel::kComposition);
  EXPECT_NEAR(candidate->distortion, 210.0, 1.0);
  // A+C or C+A — both shift 210 m; selection keeps the first minimum found.
  EXPECT_TRUE(candidate->lppm == "A+C" || candidate->lppm == "C+A");
}

TEST_F(EngineTest, MultipleAttacksMustAllFail) {
  // Attack 1 threshold 120 m, attack 2 threshold 260 m: only the triple
  // compositions (total 310) defeat both.
  FakeAttack attack1("fake1", catches_below(120.0));
  FakeAttack attack2("fake2", catches_below(260.0));
  const std::vector<const attacks::Attack*> attacks{&attack1, &attack2};
  const auto engine = make_engine(singles_, attacks);

  const auto candidate = engine.search(day_trace());
  ASSERT_TRUE(candidate.has_value());
  EXPECT_EQ(candidate->level, ProtectionLevel::kComposition);
  EXPECT_NEAR(candidate->distortion, 310.0, 1.0);
}

TEST_F(EngineTest, SearchFailsWhenNothingProtects) {
  FakeAttack attack("fake", catches_below(1e9));
  const std::vector<const attacks::Attack*> attacks{&attack};
  const auto engine = make_engine(singles_, attacks);
  EXPECT_FALSE(engine.search(day_trace()).has_value());
}

TEST_F(EngineTest, SearchCountsCost) {
  FakeAttack attack("fake", catches_below(1e9));
  const std::vector<const attacks::Attack*> attacks{&attack};
  const auto engine = make_engine(singles_, attacks);
  ProtectionResult cost;
  EXPECT_FALSE(engine.search(day_trace(), &cost).has_value());
  // 3 singles + 12 compositions, all tried, one attack each.
  EXPECT_EQ(cost.lppm_applications, 15u);
  EXPECT_EQ(cost.attack_invocations, 15u);
}

TEST_F(EngineTest, ProtectWholeTraceKeepsUserId) {
  FakeAttack attack("fake", catches_below(80.0));
  const std::vector<const attacks::Attack*> attacks{&attack};
  const auto engine = make_engine(singles_, attacks);

  const auto result = engine.protect(day_trace());
  EXPECT_EQ(result.level, ProtectionLevel::kSingle);
  ASSERT_EQ(result.pieces.size(), 1u);
  EXPECT_EQ(result.pieces[0].trace.user(), "victim");
  EXPECT_TRUE(result.fully_protected());
  EXPECT_EQ(result.lost_records, 0u);
  EXPECT_EQ(result.original_records, day_trace().size());
}

TEST_F(EngineTest, FineGrainedSplitsUntilSubTracesProtectable) {
  // This attack catches any trace spanning > 7 h regardless of shift
  // (long traces are too discriminative), and shorter traces when the
  // shift is under 80 m. A 24 h trace fails whole and as 12 h halves;
  // 6 h quarters are protectable by B or C.
  FakeAttack attack("fake", [](const Trace& trace)
                                -> std::optional<mobility::UserId> {
    if (trace.duration() > 7 * kHour) return mobility::UserId("victim");
    if (shift_of(trace) < 80.0) return mobility::UserId("victim");
    return std::nullopt;
  });
  const std::vector<const attacks::Attack*> attacks{&attack};
  const auto engine = make_engine(singles_, attacks);

  const auto result = engine.protect(day_trace());
  EXPECT_EQ(result.level, ProtectionLevel::kFineGrained);
  EXPECT_EQ(result.pieces.size(), 4u);  // 24 h -> 2 x 12 h -> 4 x 6 h
  EXPECT_TRUE(result.fully_protected());
  // renew_Ids: every piece published under a fresh pseudonym.
  std::set<std::string> ids;
  for (const auto& piece : result.pieces) {
    EXPECT_NE(piece.trace.user(), "victim");
    EXPECT_TRUE(piece.trace.user().starts_with("victim#"));
    ids.insert(piece.trace.user());
    EXPECT_EQ(piece.level, ProtectionLevel::kFineGrained);
  }
  EXPECT_EQ(ids.size(), result.pieces.size());
  // No record lost: piece originals partition the day.
  std::size_t piece_records = 0;
  for (const auto& piece : result.pieces) {
    piece_records += piece.original_records;
  }
  EXPECT_EQ(piece_records, day_trace().size());
}

TEST_F(EngineTest, DeltaFloorStopsRecursionAndErasesData) {
  // Nothing ever protects; delta = 4 h. The 24 h trace recurses down to
  // pieces shorter than 4 h, all of which are erased.
  FakeAttack attack("fake", catches_below(1e9));
  const std::vector<const attacks::Attack*> attacks{&attack};
  MoodConfig config;
  config.delta = 4 * kHour;
  const auto engine = make_engine(singles_, attacks, config);

  const auto result = engine.protect(day_trace());
  EXPECT_EQ(result.level, ProtectionLevel::kNone);
  EXPECT_TRUE(result.pieces.empty());
  EXPECT_EQ(result.lost_records, day_trace().size());
  EXPECT_FALSE(result.fully_protected());
}

TEST_F(EngineTest, PartialProtectionCountsPartialLoss) {
  // Catches: traces spanning > 7 h always; short traces in the first half
  // of the day always (owner's morning is hopeless); afternoon short
  // traces protected when shifted >= 80 m.
  FakeAttack attack("fake", [](const Trace& trace)
                                -> std::optional<mobility::UserId> {
    if (trace.duration() > 7 * kHour) return mobility::UserId("victim");
    if (trace.empty() || trace.front().time < 12 * kHour) {
      return mobility::UserId("victim");
    }
    if (shift_of(trace) < 80.0) return mobility::UserId("victim");
    return std::nullopt;
  });
  const std::vector<const attacks::Attack*> attacks{&attack};
  const auto engine = make_engine(singles_, attacks);

  const auto result = engine.protect(day_trace());
  EXPECT_EQ(result.level, ProtectionLevel::kFineGrained);
  EXPECT_GT(result.lost_records, 0u);
  EXPECT_LT(result.lost_records, day_trace().size());
  EXPECT_FALSE(result.fully_protected());
  EXPECT_GT(result.protected_records(), 0u);
}

TEST_F(EngineTest, MeanDistortionIsRecordWeighted) {
  ProtectionResult result;
  result.pieces.push_back(
      ProtectedPiece{Trace("x", {}), "A", ProtectionLevel::kSingle, 100.0, 10});
  result.pieces.push_back(
      ProtectedPiece{Trace("y", {}), "B", ProtectionLevel::kSingle, 200.0, 30});
  EXPECT_NEAR(result.mean_distortion(), 175.0, 1e-9);
}

TEST_F(EngineTest, CrowdsensingModePreslicesByConfiguredPeriod) {
  // 24 h trace, 6 h preslice, threshold 80 m: each of the 4 slices is
  // protected by a single LPPM; ids are renewed per slice.
  FakeAttack attack("fake", catches_below(80.0));
  const std::vector<const attacks::Attack*> attacks{&attack};
  MoodConfig config;
  config.preslice = 6 * kHour;
  const auto engine = make_engine(singles_, attacks, config);

  const auto result = engine.protect_crowdsensing(day_trace());
  EXPECT_EQ(result.pieces.size(), 4u);
  EXPECT_TRUE(result.fully_protected());
  for (const auto& piece : result.pieces) {
    EXPECT_TRUE(piece.trace.user().starts_with("victim#"));
  }
}

TEST_F(EngineTest, EmptyTraceProtectsTrivially) {
  FakeAttack attack("fake", catches_below(80.0));
  const std::vector<const attacks::Attack*> attacks{&attack};
  const auto engine = make_engine(singles_, attacks);
  const auto result = engine.protect(Trace("victim", {}));
  EXPECT_EQ(result.level, ProtectionLevel::kNone);
  EXPECT_EQ(result.lost_records, 0u);
  EXPECT_EQ(result.original_records, 0u);
}

TEST_F(EngineTest, FirstHitModeStopsEarly) {
  // Threshold 200: compositions of total >= 200 protect. In first-hit mode
  // the engine returns the first protective composition in enumeration
  // order instead of the global best.
  FakeAttack attack("fake", catches_below(200.0));
  const std::vector<const attacks::Attack*> attacks{&attack};
  MoodConfig config;
  config.first_hit = true;
  const auto engine = make_engine(singles_, attacks, config);

  ProtectionResult cost;
  const auto candidate = engine.search(day_trace(), &cost);
  ASSERT_TRUE(candidate.has_value());
  // Exhaustive mode would try all 15; first-hit stops earlier.
  EXPECT_LT(cost.lppm_applications, 15u);
}

TEST_F(EngineTest, ValidatesConstruction) {
  FakeAttack attack("fake", catches_below(1.0));
  const std::vector<const attacks::Attack*> attacks{&attack};
  EXPECT_THROW(MoodEngine({}, {}, attacks, &metric_, {}),
               support::PreconditionError);
  EXPECT_THROW(MoodEngine(singles_, {}, {}, &metric_, {}),
               support::PreconditionError);
  EXPECT_THROW(MoodEngine(singles_, {}, attacks, nullptr, {}),
               support::PreconditionError);
  MoodConfig bad;
  bad.delta = 0;
  EXPECT_THROW(MoodEngine(singles_, {}, attacks, &metric_, bad),
               support::PreconditionError);
}

TEST(RenewIds, AssignsSequentialPseudonyms) {
  std::vector<ProtectedPiece> pieces(3);
  for (auto& piece : pieces) piece.trace = Trace("alice", {});
  renew_ids(pieces, "alice");
  EXPECT_EQ(pieces[0].trace.user(), "alice#0");
  EXPECT_EQ(pieces[1].trace.user(), "alice#1");
  EXPECT_EQ(pieces[2].trace.user(), "alice#2");
}

TEST(ProtectionLevelNames, Stable) {
  EXPECT_EQ(to_string(ProtectionLevel::kNone), "none");
  EXPECT_EQ(to_string(ProtectionLevel::kSingle), "single-LPPM");
  EXPECT_EQ(to_string(ProtectionLevel::kComposition), "multi-LPPM");
  EXPECT_EQ(to_string(ProtectionLevel::kFineGrained), "fine-grained");
}

}  // namespace
}  // namespace mood::decision
