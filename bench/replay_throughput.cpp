// Throughput/latency bench for the online gateway (src/stream): replays
// one preset through the StreamEngine over a (shard count x staleness
// bound x engine x arrival rate) grid and reports sustained events/sec
// plus p50/p95/p99 decision latency per run — the scaling story behind
// the committed BENCH_pr5.json and the PR 10 loop-engine BENCH_pr10.json.
//
//   ./replay_throughput [--datasets=privamov] [--scale=0.25] [--seed=7]
//                       [--shards=1,2,4,8] [--staleness=0] [--batch=256]
//                       [--engines=loop,batch] [--arrival-rate=0]
//                       [--loop-slack=64] [--loop-recheck=16]
//                       [--checkpoint-every=0] [--checkpoint-dir=DIR]
//                       [--shed-high=0] [--shed-low=0] [--drain-budget=0]
//                       [--json=replay.json]
//
// Defaults to privamov (the most at-risk population, so the mechanism-
// selection path is exercised hard) at scale 0.25. --staleness accepts a
// comma list (e.g. 0,64,256) to measure the staleness-vs-throughput
// tradeoff instead of anecdotes: higher bounds defer the PIT/POI profile
// refreshes at the cost of mid-stream decisions lagging the window (the
// final decisions are canonicalised by finish() and must stay identical).
// --engines runs each grid point under every listed execution mode (loop:
// per-shard worker threads deciding at admission; batch: the micro-batch
// determinism oracle) and the gate compares decisions across both — the
// PR 10 loop-vs-batch twin grid. --arrival-rate is a comma list of paced
// open-loop arrival rates in events/sec (0 = unpaced, the throughput
// mode); paced loop runs measure genuine per-event decision latency,
// which is the p99 the PR 10 acceptance bar caps at 10 ms.
// --checkpoint-every=N additionally re-runs every grid point with
// periodic mood-snapshot/1 checkpoints (cadence N events, written to
// --checkpoint-dir or a temp directory) and prints the throughput
// overhead — the number the PR 7 acceptance bar caps at 10%.
// --shed-high/--shed-low/--drain-budget switch on the PR 8 overload
// controls for every grid point, pricing the degraded-decision path
// (validating admission is always on and costs the same either way).
// --telemetry-twin=1 (the default) runs each grid point twice — stage
// timers off, then stage timers on with an active trace session — and
// prints the telemetry overhead, the number the PR 9 acceptance bar
// caps at 3%. Set --telemetry-twin=0 for the old single-run grid
// (stage timers on, no trace).
// Shedding and budgets only defer work that finish() re-does canonically,
// so the determinism gate below still applies unchanged — a divergence
// under shedding is a real bug, not an expected artefact.
// --json writes an array of "mood-stream/1" documents, one per grid
// point. Every run's final decisions are compared across the whole grid
// (checkpointed runs included — checkpointing must never perturb them);
// exits non-zero if they ever diverge (the determinism gate, cheaper than
// the full batch verification `mood replay` performs).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "report/report.h"
#include "stream/engine.h"
#include "stream/replay.h"
#include "telemetry/trace.h"

namespace {

/// Strict comma-list parse: every element must be a bare non-negative
/// decimal integer (no sign, no trailing junk — "64x" must not silently
/// measure 64, "-1" must not wrap), or the bench exits 2 with a usage
/// message like Options::get_int would.
std::vector<std::size_t> parse_list(const std::string& flag,
                                    const std::string& list) {
  std::vector<std::size_t> values;
  std::string current;
  for (const char c : list + ",") {
    if (c != ',') {
      current.push_back(c);
      continue;
    }
    if (current.empty()) continue;
    // All-digits check before stoul: stoul would happily wrap "-1" into
    // 2^64-1 and accept leading whitespace, both violating the contract.
    bool digits = true;
    for (const char d : current) digits = digits && d >= '0' && d <= '9';
    unsigned long value = 0;
    try {
      value = digits ? std::stoul(current) : 0;
    } catch (const std::exception&) {
      digits = false;
    }
    if (!digits) {
      std::fprintf(stderr,
                   "--%s: expected a comma list of non-negative integers, "
                   "got '%s'\n",
                   flag.c_str(), current.c_str());
      std::exit(2);
    }
    values.push_back(static_cast<std::size_t>(value));
    current.clear();
  }
  return values;
}

/// Comma-list of engine modes; exits 2 on anything but loop|batch.
std::vector<mood::stream::EngineMode> parse_engines(const std::string& list) {
  std::vector<mood::stream::EngineMode> modes;
  std::string current;
  for (const char c : list + ",") {
    if (c != ',') {
      current.push_back(c);
      continue;
    }
    if (current.empty()) continue;
    try {
      modes.push_back(mood::stream::parse_engine_mode(current));
    } catch (const mood::support::UsageError& e) {
      std::fprintf(stderr, "--engines: %s\n", e.what());
      std::exit(2);
    }
    current.clear();
  }
  return modes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mood;
  const support::Options options(argc, argv);
  bench::BenchContext ctx = bench::parse_context(argc, argv);
  if (options.get_string("datasets", "").empty()) {
    ctx.datasets = {"privamov"};
  }
  const auto shard_counts = parse_list("shards", options.get_string("shards", "1,2,4,8"));
  const auto staleness_bounds =
      parse_list("staleness", options.get_string("staleness", "0"));
  const auto engines = parse_engines(options.get_string("engines", "loop,batch"));
  const auto arrival_rates =
      parse_list("arrival-rate", options.get_string("arrival-rate", "0"));
  if (shard_counts.empty() || staleness_bounds.empty() || engines.empty() ||
      arrival_rates.empty()) {
    std::fprintf(stderr,
                 "--shards/--staleness/--engines/--arrival-rate lists must "
                 "be non-empty\n");
    return 2;
  }
  const auto loop_slack =
      static_cast<std::size_t>(options.get_int("loop-slack", 64));
  const auto loop_recheck =
      static_cast<std::size_t>(options.get_int("loop-recheck", 16));

  stream::ReplayOptions replay_options;
  replay_options.batch_events =
      static_cast<std::size_t>(options.get_int("batch", 256));
  const auto checkpoint_every =
      static_cast<std::uint64_t>(options.get_int("checkpoint-every", 0));
  const bool telemetry_twin = options.get_int("telemetry-twin", 1) != 0;
  stream::ResilienceConfig resilience;
  resilience.shed_high_watermark =
      static_cast<std::size_t>(options.get_int("shed-high", 0));
  resilience.shed_low_watermark =
      static_cast<std::size_t>(options.get_int("shed-low", 0));
  resilience.drain_budget =
      static_cast<std::size_t>(options.get_int("drain-budget", 0));
  if (resilience.shed_low_watermark > resilience.shed_high_watermark) {
    std::fprintf(stderr, "--shed-low must not exceed --shed-high\n");
    return 2;
  }
  std::string checkpoint_dir = options.get_string("checkpoint-dir", "");
  if (checkpoint_every > 0 && checkpoint_dir.empty()) {
    checkpoint_dir = (std::filesystem::temp_directory_path() /
                      "mood_replay_throughput_ckpt")
                         .string();
  }

  report::Json documents = report::Json::array();
  int exit_code = 0;
  for (const auto& name : ctx.datasets) {
    const mobility::Dataset dataset =
        simulation::make_preset_dataset(name, ctx.scale, ctx.seed);
    const core::ExperimentHarness harness(dataset, ctx.config, ctx.seed);
    const auto events = stream::make_event_stream(harness.pairs());
    std::printf("%s: %zu users, %zu events\n", name.c_str(),
                harness.pairs().size(), events.size());
    std::printf("%6s %8s %8s %10s %5s %12s %10s %10s %10s %10s %10s\n",
                "engine", "rate", "shards", "staleness", "mode", "events/s",
                "p50_ms", "p95_ms", "p99_ms", "searches", "refreshes");

    // Final decisions must agree across the whole grid: shard count,
    // drain parallelism, execution mode (loop vs batch) and arrival
    // pacing never affect them, staleness short-cuts and loop cheap-path
    // verdicts are repaired by finish()'s canonical re-decision, and
    // checkpoint writes happen strictly between micro-batches (batch) or
    // at quiesced cuts (loop).
    std::vector<stream::UserDecision> reference;
    const auto gate = [&](const stream::ReplayResult& result,
                          const char* engine_tag, std::size_t rate,
                          std::size_t shards, std::size_t staleness) {
      if (reference.empty()) {
        reference = result.decisions;
        return;
      }
      if (result.decisions.size() != reference.size()) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %zu users decided at "
                     "engine=%s rate=%zu shards=%zu staleness=%zu, %zu in "
                     "the reference run\n",
                     result.decisions.size(), engine_tag, rate, shards,
                     staleness, reference.size());
        exit_code = 1;
        return;
      }
      for (std::size_t i = 0; i < result.decisions.size(); ++i) {
        const auto& a = reference[i];
        const auto& b = result.decisions[i];
        if (a.user != b.user || a.decision != b.decision ||
            a.winner != b.winner) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: user %s decided "
                       "differently at engine=%s rate=%zu shards=%zu "
                       "staleness=%zu\n",
                       b.user.c_str(), engine_tag, rate, shards, staleness);
          exit_code = 1;
        }
      }
    };

    for (const stream::EngineMode engine_mode : engines) {
    for (const std::size_t arrival_rate : arrival_rates) {
    for (const std::size_t staleness : staleness_bounds) {
      for (const std::size_t shards : shard_counts) {
        stream::StreamConfig config;
        config.engine = engine_mode;
        config.loop_slack = loop_slack;
        config.loop_recheck = loop_recheck;
        config.shards = shards;
        config.staleness_points = staleness;
        config.resilience = resilience;
        replay_options.target_rate = static_cast<double>(arrival_rate);

        // One baseline run per grid point, plus the telemetry twin
        // (stage timers + an active trace session) and, with
        // --checkpoint-every, a checkpointed twin pricing the snapshot
        // writes. Overheads are quoted against the first run.
        struct Variant {
          const char* tag;
          bool stage_timers;
          bool traced;
          bool checkpointed;
        };
        std::vector<Variant> variants;
        if (telemetry_twin) {
          variants.push_back({"off", false, false, false});
          variants.push_back({"tel", true, true, false});
        } else {
          variants.push_back({"on", true, false, false});
        }
        if (checkpoint_every > 0) {
          variants.push_back({"ckpt", true, false, true});
        }
        double baseline_eps = 0.0;
        for (const Variant& variant : variants) {
          config.telemetry.stage_timers = variant.stage_timers;
          stream::StreamEngine engine(harness.make_engine(), config);
          if (variant.checkpointed) {
            std::filesystem::remove_all(checkpoint_dir);
            engine.configure_checkpoints(
                {checkpoint_dir, checkpoint_every},
                {ctx.seed, dataset.name(), events.size(),
                 replay_options.batch_events});
          }
          if (variant.traced) telemetry::TraceSession::instance().start();
          const stream::ReplayResult result =
              stream::run_replay(engine, events, replay_options);
          if (variant.traced) telemetry::TraceSession::instance().stop();
          std::printf(
              "%6s %8zu %8zu %10zu %5s %12.0f %10.3f %10.3f %10.3f %10llu "
              "%10llu",
              stream::to_string(engine_mode), arrival_rate, shards,
              staleness, variant.tag, result.events_per_second,
              result.latency.p50 * 1e3, result.latency.p95 * 1e3,
              result.latency.p99 * 1e3,
              static_cast<unsigned long long>(result.stats.searches),
              static_cast<unsigned long long>(
                  result.stats.profile_refreshes));
          if (&variant == &variants.front()) {
            baseline_eps = result.events_per_second;
            std::printf("\n");
          } else {
            const double overhead =
                baseline_eps > 0.0
                    ? (baseline_eps - result.events_per_second) /
                          baseline_eps * 100.0
                    : 0.0;
            if (variant.checkpointed) {
              std::printf("  (%llu snapshots, %.1f%% overhead)\n",
                          static_cast<unsigned long long>(
                              result.stats.checkpoints),
                          overhead);
            } else {
              std::printf(
                  "  (%llu spans, %.1f%% overhead)\n",
                  static_cast<unsigned long long>(
                      telemetry::TraceSession::instance().span_count()),
                  overhead);
            }
          }
          gate(result, stream::to_string(engine_mode), arrival_rate, shards,
               staleness);

          report::RunMetadata meta;
          meta.tool = "replay_throughput";
          meta.dataset = dataset.name();
          meta.seed = ctx.seed;
          meta.wall_seconds = result.wall_seconds;
          documents.push_back(report::make_stream_report(
              meta, report::dataset_summary(dataset), config, replay_options,
              result, std::nullopt, /*include_users=*/false));
        }
      }
    }
    }
    }
  }

  if (const std::string path = options.get_string("json", "");
      !path.empty()) {
    report::write_json_file(path, documents);
    std::printf("wrote %s\n", path.c_str());
  }
  return exit_code;
}
