// Throughput/latency bench for the online gateway (src/stream): replays
// one preset through the StreamEngine at several shard counts and reports
// sustained events/sec plus p50/p95/p99 decision latency per run — the
// scaling story behind the committed BENCH_pr4.json.
//
//   ./replay_throughput [--datasets=privamov] [--scale=0.25] [--seed=7]
//                       [--shards=1,2,4,8] [--batch=256] [--staleness=0]
//                       [--json=replay.json]
//
// Defaults to privamov (the most at-risk population, so the mechanism-
// selection path is exercised hard) at scale 0.25. --json writes an array
// of "mood-stream/1" documents, one per shard count. Every run's final
// decisions are compared across shard counts; exits non-zero if they ever
// diverge (the determinism gate, cheaper than the full batch verification
// `mood replay` performs).

#include <cstdio>
#include <string>
#include <vector>

#include "experiment_common.h"
#include "report/report.h"
#include "stream/engine.h"
#include "stream/replay.h"

int main(int argc, char** argv) {
  using namespace mood;
  const support::Options options(argc, argv);
  bench::BenchContext ctx = bench::parse_context(argc, argv);
  if (options.get_string("datasets", "").empty()) {
    ctx.datasets = {"privamov"};
  }
  std::vector<std::size_t> shard_counts;
  {
    const std::string list = options.get_string("shards", "1,2,4,8");
    std::string current;
    for (const char c : list + ",") {
      if (c == ',') {
        if (!current.empty()) {
          shard_counts.push_back(
              static_cast<std::size_t>(std::stoul(current)));
        }
        current.clear();
      } else {
        current.push_back(c);
      }
    }
  }
  if (shard_counts.empty()) {
    std::fprintf(stderr, "--shards list is empty\n");
    return 2;
  }

  stream::ReplayOptions replay_options;
  replay_options.batch_events =
      static_cast<std::size_t>(options.get_int("batch", 256));
  const auto staleness =
      static_cast<std::size_t>(options.get_int("staleness", 0));

  report::Json documents = report::Json::array();
  int exit_code = 0;
  for (const auto& name : ctx.datasets) {
    const mobility::Dataset dataset =
        simulation::make_preset_dataset(name, ctx.scale, ctx.seed);
    const core::ExperimentHarness harness(dataset, ctx.config, ctx.seed);
    const auto events = stream::make_event_stream(harness.pairs());
    std::printf("%s: %zu users, %zu events\n", name.c_str(),
                harness.pairs().size(), events.size());
    std::printf("%8s %12s %10s %10s %10s %10s\n", "shards", "events/s",
                "p50_ms", "p95_ms", "p99_ms", "searches");

    std::vector<stream::UserDecision> reference;
    for (const std::size_t shards : shard_counts) {
      stream::StreamConfig config;
      config.shards = shards;
      config.staleness_points = staleness;
      stream::StreamEngine engine(harness.make_engine(), config);
      const stream::ReplayResult result =
          stream::run_replay(engine, events, replay_options);
      std::printf("%8zu %12.0f %10.3f %10.3f %10.3f %10llu\n", shards,
                  result.events_per_second, result.latency.p50 * 1e3,
                  result.latency.p95 * 1e3, result.latency.p99 * 1e3,
                  static_cast<unsigned long long>(result.stats.searches));

      if (reference.empty()) {
        reference = result.decisions;
      } else if (result.decisions.size() != reference.size()) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %zu users decided at %zu "
                     "shards, %zu at %zu shards\n",
                     result.decisions.size(), shards, reference.size(),
                     shard_counts.front());
        exit_code = 1;
      } else {
        for (std::size_t i = 0; i < result.decisions.size(); ++i) {
          const auto& a = reference[i];
          const auto& b = result.decisions[i];
          if (a.user != b.user || a.decision != b.decision ||
              a.winner != b.winner) {
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: user %s decided "
                         "differently at %zu shards\n",
                         b.user.c_str(), shards);
            exit_code = 1;
          }
        }
      }

      report::RunMetadata meta;
      meta.tool = "replay_throughput";
      meta.dataset = dataset.name();
      meta.seed = ctx.seed;
      meta.wall_seconds = result.wall_seconds;
      documents.push_back(report::make_stream_report(
          meta, report::dataset_summary(dataset), config, replay_options,
          result, std::nullopt, /*include_users=*/false));
    }
  }

  if (const std::string path = options.get_string("json", "");
      !path.empty()) {
    report::write_json_file(path, documents);
    std::printf("wrote %s\n", path.c_str());
  }
  return exit_code;
}
