// Fig. 10 reproduction: data loss of the full MooD pipeline (composition
// search + 24 h pre-slicing + recursive fine-grained protection, delta =
// 4 h) vs the single LPPMs and HybridLPPM, per dataset.

#include "experiment_common.h"

int main(int argc, char** argv) {
  using namespace mood;
  const auto ctx = bench::parse_context(argc, argv);

  bench::print_header("Fig. 10: data loss [% measured | paper]");
  std::printf("%-14s %16s %16s %16s %16s %16s\n", "dataset", "Geo-I", "TRL",
              "HMC", "HybridLPPM", "MooD");
  for (const auto& name : ctx.datasets) {
    const auto harness = bench::make_harness(ctx, name);
    const auto& paper = bench::kPaperFig10.at(name);
    std::vector<double> losses{
        harness.evaluate_single("GeoI").data_loss(),
        harness.evaluate_single("TRL").data_loss(),
        harness.evaluate_single("HMC").data_loss(),
        harness.evaluate_hybrid().data_loss(),
        harness.evaluate_mood_full().data_loss(),
    };
    std::printf("%-14s", name.c_str());
    for (std::size_t s = 0; s < losses.size(); ++s) {
      std::printf("  %6.2f%% | %5.2f", 100.0 * losses[s], paper[s]);
    }
    std::printf("\n");
  }
  return 0;
}
