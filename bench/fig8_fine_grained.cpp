// Fig. 8 reproduction: fine-grained protection for the users the
// composition search could not protect. Their traces are cut into 24 h
// sub-traces; each sub-trace goes through MooD's multi-LPPM composition
// search independently, and the figure reports the proportion of protected
// sub-traces per user.

#include "experiment_common.h"

int main(int argc, char** argv) {
  using namespace mood;
  const auto ctx = bench::parse_context(argc, argv);

  bench::print_header(
      "Fig. 8: fine-grained protection of composition-search orphans");
  for (const auto& name : ctx.datasets) {
    const auto harness = bench::make_harness(ctx, name);
    const auto engine = harness.make_engine();
    const auto search = harness.evaluate_mood_search();

    std::printf("\n%s:\n", name.c_str());
    char label = 'A';
    bool any = false;
    for (std::size_t i = 0; i < search.users.size(); ++i) {
      if (search.users[i].is_protected) continue;
      any = true;
      const auto& pair = harness.pairs()[i];
      std::size_t protected_slices = 0, slices = 0;
      for (const auto& slice :
           pair.test.slices(engine.config().preslice)) {
        ++slices;
        if (engine.search(slice).has_value()) ++protected_slices;
      }
      std::printf("  USER %c (%s): %zu/%zu sub-traces protected (%.0f%%)\n",
                  label, pair.test.user().c_str(), protected_slices, slices,
                  bench::pct(protected_slices, slices));
      ++label;
    }
    if (!any) {
      std::printf("  (all users already protected by the composition "
                  "search at this scale)\n");
    }
  }
  std::printf("\n(paper: MDC users A/B/C at 100%%/92%%/11%%; PrivaMov D/E/F "
              "at 67%%/43%%/50%%;\n Geolife G/H with 1 of 4 sub-traces "
              "protected)\n");
  return 0;
}
