#pragma once

/// \file experiment_common.h
/// Shared plumbing for the figure/table reproduction benches: dataset
/// construction at a configurable scale, result-table printing, and the
/// paper's reported numbers for side-by-side comparison.
///
/// Every bench accepts:
///   --scale=<0..1>   record-volume scale (default 0.25; MOOD_SCALE env
///                    overrides too). 0.25 keeps sampling dense enough for
///                    POI semantics (~27 min between records on MDC) while
///                    benches stay laptop-fast; 1.0 approximates the
///                    paper's record volumes.
///   --seed=<n>       generator + pipeline seed (default 7)
///   --datasets=a,b   comma list of presets (default: all four)
///   --hmc-coverage / --hmc-max-cells / --hmc-budget / --geoi-epsilon /
///   --trl-radius     LPPM parameter overrides for sweeps

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "simulation/presets.h"
#include "support/logging.h"
#include "support/options.h"

namespace mood::bench {

struct BenchContext {
  double scale = 0.25;
  std::uint64_t seed = 7;
  std::vector<std::string> datasets;
  core::ExperimentConfig config;  // paper defaults, CLI-overridable
};

inline BenchContext parse_context(int argc, char** argv) {
  const support::Options options(argc, argv);
  support::set_log_level(support::LogLevel::kWarn);
  BenchContext ctx;
  ctx.scale = options.get_double("scale", 0.25);
  ctx.seed = static_cast<std::uint64_t>(options.get_int("seed", 7));
  ctx.config.hmc_hot_coverage =
      options.get_double("hmc-coverage", ctx.config.hmc_hot_coverage);
  ctx.config.hmc_max_cells = static_cast<std::size_t>(options.get_int(
      "hmc-max-cells", static_cast<std::int64_t>(ctx.config.hmc_max_cells)));
  ctx.config.hmc_budget_m =
      options.get_double("hmc-budget", ctx.config.hmc_budget_m);
  ctx.config.geoi_epsilon =
      options.get_double("geoi-epsilon", ctx.config.geoi_epsilon);
  ctx.config.trl_radius_m =
      options.get_double("trl-radius", ctx.config.trl_radius_m);
  const std::string list =
      options.get_string("datasets", "mdc,privamov,geolife,cabspotting");
  std::string current;
  for (const char c : list + ",") {
    if (c == ',') {
      if (!current.empty()) ctx.datasets.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  return ctx;
}

/// Builds the full experimental context for one preset at bench scale.
inline core::ExperimentHarness make_harness(const BenchContext& ctx,
                                            const std::string& preset) {
  const auto dataset =
      simulation::make_preset_dataset(preset, ctx.scale, ctx.seed);
  return core::ExperimentHarness(dataset, ctx.config, ctx.seed);
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline double pct(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

/// ---- Paper-reported values (for the "paper" reference columns). -------
/// Keyed by preset name; vectors follow the strategy order stated at each
/// bench. Values transcribed from the figures/text of the Middleware'19
/// paper.

/// Fig. 2 — % non-protected users, strategies {GeoI, TRL, HMC, Hybrid}.
inline const std::map<std::string, std::vector<double>> kPaperFig2{
    {"mdc", {76, 61, 46, 36}},
    {"privamov", {88, 71, 49, 24}},
    {"geolife", {66, 54, 37, 24}},
    {"cabspotting", {50, 19, 25, 5}},
};

/// Fig. 3 — % data loss, strategies {GeoI, TRL, HMC, Hybrid}.
inline const std::map<std::string, std::vector<double>> kPaperFig3{
    {"mdc", {89, 73, 54, 42}},
    {"privamov", {95, 71, 47, 31}},
    {"geolife", {93, 61, 15, 9}},
    {"cabspotting", {52, 13, 26, 5}},
};

/// Fig. 6 — #non-protected users vs AP-attack alone,
/// strategies {no-LPPM, GeoI, TRL, HMC, Hybrid, MooD}.
inline const std::map<std::string, std::vector<double>> kPaperFig6{
    {"mdc", {96, 95, 79, 14, 10, 0}},
    {"privamov", {32, 31, 26, 9, 4, 2}},
    {"geolife", {32, 32, 32, 4, 4, 1}},
    {"cabspotting", {242, 207, 56, 12, 4, 0}},
};

/// Fig. 7 — #non-protected users vs all three attacks,
/// strategies {no-LPPM, GeoI, TRL, HMC, Hybrid, MooD}.
inline const std::map<std::string, std::vector<double>> kPaperFig7{
    {"mdc", {107, 107, 86, 65, 51, 3}},
    {"privamov", {37, 36, 29, 20, 10, 3}},
    {"geolife", {32, 27, 22, 15, 10, 2}},
    {"cabspotting", {281, 263, 65, 131, 27, 0}},
};

/// Fig. 10 — % data loss, strategies {GeoI, TRL, HMC, Hybrid, MooD}.
inline const std::map<std::string, std::vector<double>> kPaperFig10{
    {"mdc", {88, 73, 53, 42, 0.33}},
    {"privamov", {95, 70, 46, 30, 2.5}},
    {"geolife", {68, 60, 14, 9, 0.37}},
    {"cabspotting", {52, 13, 25, 5, 0.0}},
};

/// Table 1 — paper record counts and user counts.
struct PaperDataset {
  std::size_t users;
  const char* location;
  std::size_t records;
};
inline const std::map<std::string, PaperDataset> kPaperTable1{
    {"cabspotting", {531, "San Francisco", 11179014}},
    {"geolife", {41, "Beijing", 1468989}},
    {"mdc", {141, "Geneva", 904282}},
    {"privamov", {41, "Lyon", 948965}},
};

}  // namespace mood::bench
