// Fig. 3 reproduction: ratio of data loss (records of traces still
// re-identified by at least one attack, Eq. 7) under each single LPPM and
// HybridLPPM, on the four datasets.
//
// Output goes through src/report: the measured-vs-paper comparison renders
// with report::Table, and --json=<path> additionally writes the full
// machine-readable results (a mood-report/1 bundle of one mood-result/1
// document per dataset — the same shape `mood report --format=json` emits).

#include <iostream>

#include "experiment_common.h"
#include "report/report.h"
#include "report/table.h"

int main(int argc, char** argv) {
  using namespace mood;
  const auto ctx = bench::parse_context(argc, argv);
  const support::Options options(argc, argv);
  const std::string json_path = options.get_string("json", "");

  bench::print_header(
      "Fig. 3: ratio of data loss (3 attacks) [measured | paper]");
  report::Table table(
      {"dataset", "users", "Geo-I", "TRL", "HMC", "HybridLPPM"});
  report::Json runs = report::Json::array();

  for (const auto& name : ctx.datasets) {
    const auto dataset =
        simulation::make_preset_dataset(name, ctx.scale, ctx.seed);
    const core::ExperimentHarness harness(dataset, ctx.config, ctx.seed);
    const auto& paper = bench::kPaperFig3.at(name);
    const std::vector<core::StrategyResult> results{
        harness.evaluate_single("GeoI"),
        harness.evaluate_single("TRL"),
        harness.evaluate_single("HMC"),
        harness.evaluate_hybrid(),
    };

    std::vector<std::string> row{name, std::to_string(results[0].user_count())};
    for (std::size_t s = 0; s < results.size(); ++s) {
      row.push_back(report::format_percent(results[s].data_loss()) + " | " +
                    report::format_double(paper[s], 0) + "%");
    }
    table.add_row(std::move(row));

    if (!json_path.empty()) {
      report::RunMetadata meta;
      meta.tool = "bench/fig3_data_loss";
      meta.dataset = harness.dataset_name();
      meta.seed = ctx.seed;
      std::vector<report::Json> strategies;
      for (const auto& result : results) {
        meta.timings.emplace_back(result.strategy, result.wall_seconds);
        meta.wall_seconds += result.wall_seconds;
        strategies.push_back(report::to_json(result, /*include_users=*/false));
      }
      report::Json entry = report::Json::object();
      entry["source"] = name;
      entry["report"] = report::make_report(
          meta, ctx.config, report::dataset_summary(dataset),
          std::move(strategies));
      runs.push_back(std::move(entry));
    }
  }
  table.print(std::cout);

  if (!json_path.empty()) {
    report::Json bundle = report::Json::object();
    bundle["schema"] = "mood-report/1";
    bundle["runs"] = std::move(runs);
    report::write_json_file(json_path, bundle);
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
