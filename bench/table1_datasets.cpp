// Table 1 reproduction: description of the four (synthetic) datasets —
// users, location, records — next to the paper's numbers. Records scale
// with --scale; user counts always match the paper.

#include "experiment_common.h"

int main(int argc, char** argv) {
  using namespace mood;
  const auto ctx = bench::parse_context(argc, argv);

  bench::print_header("Table 1: Description of datasets (scale " +
                      std::to_string(ctx.scale) + ")");
  std::printf("%-14s %8s %16s %14s | %8s %14s\n", "name", "users",
              "location", "records", "paper:u", "paper:records");
  for (const auto& name : ctx.datasets) {
    const auto dataset =
        simulation::make_preset_dataset(name, ctx.scale, ctx.seed);
    const auto& paper = bench::kPaperTable1.at(name);
    std::printf("%-14s %8zu %16s %14zu | %8zu %14zu\n",
                dataset.name().c_str(), dataset.user_count(), paper.location,
                dataset.record_count(), paper.users, paper.records);
  }
  std::printf("\n(records scale linearly with --scale; at scale 1.0 the "
              "synthetic volumes\napproximate the paper's per-user "
              "averages)\n");
  return 0;
}
