// Fig. 2 reproduction: ratio of non-protected users (re-identified by at
// least one of the three attacks) under each single LPPM and HybridLPPM,
// on the four datasets.

#include "experiment_common.h"

int main(int argc, char** argv) {
  using namespace mood;
  const auto ctx = bench::parse_context(argc, argv);

  bench::print_header(
      "Fig. 2: ratio of non-protected users (3 attacks) [% measured | paper]");
  std::printf("%-14s %6s %16s %16s %16s %16s\n", "dataset", "users", "Geo-I",
              "TRL", "HMC", "HybridLPPM");
  for (const auto& name : ctx.datasets) {
    const auto harness = bench::make_harness(ctx, name);
    const auto& paper = bench::kPaperFig2.at(name);
    const std::vector<core::StrategyResult> results{
        harness.evaluate_single("GeoI"),
        harness.evaluate_single("TRL"),
        harness.evaluate_single("HMC"),
        harness.evaluate_hybrid(),
    };
    std::printf("%-14s %6zu", name.c_str(), results[0].user_count());
    for (std::size_t s = 0; s < results.size(); ++s) {
      std::printf("   %5.1f%% | %3.0f%%",
                  100.0 * results[s].non_protected_ratio(), paper[s]);
    }
    std::printf("\n");
  }
  return 0;
}
