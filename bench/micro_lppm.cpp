// Micro-benchmarks (google-benchmark): LPPM application throughput and
// composition enumeration — the per-candidate costs behind MooD's
// brute-force search, which the paper's §6 singles out as its main
// performance liability.

#include <benchmark/benchmark.h>

#include "lppm/composition.h"
#include "lppm/geo_ind.h"
#include "lppm/heatmap_confusion.h"
#include "lppm/trilateration.h"
#include "simulation/generator.h"
#include "support/rng.h"

namespace {

using namespace mood;

/// One realistic user trace of ~n records.
mobility::Trace bench_trace(std::size_t records_per_day, int days = 4) {
  simulation::GeneratorParams params;
  params.users = 1;
  params.days = days;
  params.records_per_user_per_day = static_cast<double>(records_per_day);
  params.seed = 5;
  return simulation::generate(params).traces()[0];
}

void BM_GeoI_Apply(benchmark::State& state) {
  const auto trace = bench_trace(static_cast<std::size_t>(state.range(0)));
  const lppm::GeoIndistinguishability geoi(0.01);
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        geoi.apply(trace, support::RngStream(rep++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_GeoI_Apply)->Arg(100)->Arg(400)->Arg(1600);

void BM_TRL_Apply(benchmark::State& state) {
  const auto trace = bench_trace(static_cast<std::size_t>(state.range(0)));
  const lppm::Trilateration trl(1000.0);
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trl.apply(trace, support::RngStream(rep++)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_TRL_Apply)->Arg(100)->Arg(400)->Arg(1600);

void BM_HMC_Apply(benchmark::State& state) {
  simulation::GeneratorParams params;
  params.users = 24;
  params.days = 4;
  params.records_per_user_per_day = static_cast<double>(state.range(0));
  params.seed = 6;
  const auto dataset = simulation::generate(params);
  std::vector<mobility::Trace> background(dataset.traces().begin(),
                                          dataset.traces().end());
  const geo::CellGrid grid(
      geo::LocalProjection(dataset.traces()[0].front().position), 800.0);
  const auto pool = std::make_shared<lppm::DonorPool>(background, grid);
  const lppm::HeatmapConfusion hmc(grid, pool, 0.8);
  const auto& trace = dataset.traces()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmc.apply(trace, support::RngStream(1)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_HMC_Apply)->Arg(100)->Arg(400);

void BM_Composition_Apply(benchmark::State& state) {
  const auto trace = bench_trace(400);
  const lppm::GeoIndistinguishability geoi(0.01);
  const lppm::Trilateration trl(1000.0);
  const lppm::Composition composition({&geoi, &trl});
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        composition.apply(trace, support::RngStream(rep++)));
  }
}
BENCHMARK(BM_Composition_Apply);

void BM_Composition_Enumerate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<lppm::GeoIndistinguishability>> owned;
  std::vector<const lppm::Lppm*> singles;
  for (int i = 0; i < n; ++i) {
    owned.push_back(std::make_unique<lppm::GeoIndistinguishability>(
        0.01 * (i + 1)));
    singles.push_back(owned.back().get());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lppm::enumerate_compositions(singles, 1, singles.size()));
  }
}
BENCHMARK(BM_Composition_Enumerate)->DenseRange(1, 6);

}  // namespace

BENCHMARK_MAIN();
