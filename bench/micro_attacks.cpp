// Micro-benchmarks (google-benchmark): attack training and
// re-identification throughput — the inner loop of MooD's search (every
// candidate obfuscation is matched against every known user profile).

#include <benchmark/benchmark.h>

#include "attacks/suite.h"
#include "simulation/generator.h"

namespace {

using namespace mood;

struct Population {
  std::vector<mobility::Trace> background;
  std::vector<mobility::Trace> tests;
  geo::GeoPoint reference;
};

Population make_population(std::size_t users, std::size_t records_per_day) {
  simulation::GeneratorParams params;
  params.users = users;
  params.days = 6;
  params.records_per_user_per_day = static_cast<double>(records_per_day);
  params.seed = 12;
  const auto dataset = simulation::generate(params);
  Population pop;
  pop.reference = dataset.traces()[0].front().position;
  for (const auto& pair : dataset.chronological_split(0.5, 4)) {
    pop.background.push_back(pair.train);
    pop.tests.push_back(pair.test);
  }
  return pop;
}

void BM_Attack_Train(benchmark::State& state, const std::string& name) {
  const auto pop = make_population(static_cast<std::size_t>(state.range(0)),
                                   150);
  for (auto _ : state) {
    auto attack = attacks::make_attack(name, pop.reference);
    attack->train(pop.background);
    benchmark::DoNotOptimize(attack);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK_CAPTURE(BM_Attack_Train, poi, "poi")->Arg(16)->Arg(64);
BENCHMARK_CAPTURE(BM_Attack_Train, pit, "pit")->Arg(16)->Arg(64);
BENCHMARK_CAPTURE(BM_Attack_Train, ap, "ap")->Arg(16)->Arg(64);

void BM_Attack_Reidentify(benchmark::State& state, const std::string& name) {
  const auto pop = make_population(static_cast<std::size_t>(state.range(0)),
                                   150);
  auto attack = attacks::make_attack(name, pop.reference);
  attack->train(pop.background);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attack->reidentify(pop.tests[i++ % pop.tests.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_Attack_Reidentify, poi, "poi")->Arg(16)->Arg(64);
BENCHMARK_CAPTURE(BM_Attack_Reidentify, pit, "pit")->Arg(16)->Arg(64);
BENCHMARK_CAPTURE(BM_Attack_Reidentify, ap, "ap")->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
