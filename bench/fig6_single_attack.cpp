// Fig. 6 reproduction: number of non-protected users against a single
// re-identification attack (AP-attack, "the most powerful attack"), for
// no-LPPM / each single LPPM / HybridLPPM / MooD's composition search.

#include "experiment_common.h"

int main(int argc, char** argv) {
  using namespace mood;
  const auto ctx = bench::parse_context(argc, argv);

  bench::print_header(
      "Fig. 6: #non-protected users vs AP-attack [measured | paper]");
  std::printf("%-14s %6s %12s %12s %12s %12s %12s %12s\n", "dataset", "users",
              "no-LPPM", "Geo-I", "TRL", "HMC", "Hybrid", "MooD");
  for (const auto& name : ctx.datasets) {
    const auto harness = bench::make_harness(ctx, name);
    const std::vector<std::size_t> ap{harness.ap_attack_index()};
    const auto& paper = bench::kPaperFig6.at(name);
    const std::vector<core::StrategyResult> results{
        harness.evaluate_no_lppm(ap),
        harness.evaluate_single("GeoI", ap),
        harness.evaluate_single("TRL", ap),
        harness.evaluate_single("HMC", ap),
        harness.evaluate_hybrid(ap),
        harness.evaluate_mood_search(ap),
    };
    std::printf("%-14s %6zu", name.c_str(), results[0].user_count());
    for (std::size_t s = 0; s < results.size(); ++s) {
      std::printf("   %4zu | %3.0f", results[s].non_protected_users(),
                  paper[s]);
    }
    std::printf("\n");
  }
  return 0;
}
