// Fig. 7 reproduction: number of non-protected users against the full
// attack set {POI, PIT, AP} for no-LPPM / single LPPMs / HybridLPPM /
// MooD's multi-LPPM composition search.

#include "experiment_common.h"

int main(int argc, char** argv) {
  using namespace mood;
  const auto ctx = bench::parse_context(argc, argv);

  bench::print_header(
      "Fig. 7: #non-protected users vs 3 attacks [measured | paper]");
  std::printf("%-14s %6s %12s %12s %12s %12s %12s %12s\n", "dataset", "users",
              "no-LPPM", "Geo-I", "TRL", "HMC", "Hybrid", "MooD");
  for (const auto& name : ctx.datasets) {
    const auto harness = bench::make_harness(ctx, name);
    const auto& paper = bench::kPaperFig7.at(name);
    const std::vector<core::StrategyResult> results{
        harness.evaluate_no_lppm(),
        harness.evaluate_single("GeoI"),
        harness.evaluate_single("TRL"),
        harness.evaluate_single("HMC"),
        harness.evaluate_hybrid(),
        harness.evaluate_mood_search(),
    };
    std::printf("%-14s %6zu", name.c_str(), results[0].user_count());
    for (std::size_t s = 0; s < results.size(); ++s) {
      std::printf("   %4zu | %3.0f", results[s].non_protected_users(),
                  paper[s]);
    }
    std::printf("\n");
  }
  return 0;
}
