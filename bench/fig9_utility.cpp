// Fig. 9 reproduction: utility of the protected data. For every dataset
// and strategy, the share of protected users whose spatio-temporal
// distortion falls in each band (<500 m, <1 km, <5 km, >=5 km).

#include "experiment_common.h"

namespace {

struct Row {
  std::string strategy;
  std::array<std::size_t, 4> bands;
  std::size_t users;
};

void print_row(const Row& row) {
  std::printf("  %-12s", row.strategy.c_str());
  for (const std::size_t b : row.bands) {
    std::printf("  %5.1f%%", mood::bench::pct(b, row.users));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mood;
  const auto ctx = bench::parse_context(argc, argv);

  bench::print_header(
      "Fig. 9: protected users per distortion band (share of users)");
  std::array<std::array<std::size_t, 4>, 5> overall{};
  std::array<std::size_t, 5> overall_users{};
  const std::array<std::string, 5> strategies{"GeoI", "TRL", "HMC",
                                              "HybridLPPM", "MooD"};

  for (const auto& name : ctx.datasets) {
    const auto harness = bench::make_harness(ctx, name);
    std::printf("\n%s:%15s %7s %7s %7s\n", name.c_str(), "<500m", "<1km",
                "<5km", ">=5km");
    std::vector<Row> rows;
    rows.push_back(Row{"GeoI", harness.evaluate_single("GeoI").distortion_bands(),
                       harness.pairs().size()});
    rows.push_back(Row{"TRL", harness.evaluate_single("TRL").distortion_bands(),
                       harness.pairs().size()});
    rows.push_back(Row{"HMC", harness.evaluate_single("HMC").distortion_bands(),
                       harness.pairs().size()});
    rows.push_back(Row{"HybridLPPM",
                       harness.evaluate_hybrid().distortion_bands(),
                       harness.pairs().size()});
    rows.push_back(Row{"MooD", harness.evaluate_mood_full().distortion_bands(),
                       harness.pairs().size()});
    for (std::size_t s = 0; s < rows.size(); ++s) {
      print_row(rows[s]);
      for (int b = 0; b < 4; ++b) overall[s][b] += rows[s].bands[b];
      overall_users[s] += rows[s].users;
    }
  }

  std::printf("\nAll datasets combined (share of all users):\n");
  std::printf("  %-12s %7s %7s %7s %7s\n", "", "<500m", "<1km", "<5km",
              ">=5km");
  for (std::size_t s = 0; s < strategies.size(); ++s) {
    print_row(Row{strategies[s], overall[s], overall_users[s]});
  }
  std::printf("\n(paper, all datasets: MooD 53.5%% of protected users under "
              "500 m and 78%%\n under 1 km, vs GeoI 38%%, TRL 12%%, HMC 45%%, "
              "Hybrid 49%% under 500 m)\n");
  return 0;
}
