// Ablation bench for MooD's design knobs (the choices DESIGN.md calls out):
//   1. exhaustive composition search (paper-faithful, best utility) vs
//      first-hit search (cheaper, the optimisation §6 hints at);
//   2. the recursion floor delta: data loss & sub-trace counts for
//      delta in {1 h, 4 h, 12 h, 24 h};
//   3. 24 h pre-slicing on/off for the fine-grained stage.
//
// Runs on one dataset (default privamov — the most vulnerable one, so the
// fine-grained stage actually fires).

#include <chrono>

#include "experiment_common.h"

int main(int argc, char** argv) {
  using namespace mood;
  auto ctx = bench::parse_context(argc, argv);
  const std::string name =
      ctx.datasets.size() == 4 ? "privamov" : ctx.datasets.front();
  const auto harness = bench::make_harness(ctx, name);

  bench::print_header("Ablation 1: exhaustive vs first-hit search (" + name +
                      ")");
  {
    const auto exhaustive = harness.evaluate_mood_full();
    std::size_t apps = 0;
    double distortion = 0.0;
    std::size_t protected_users = 0;
    for (const auto& u : exhaustive.users) {
      apps += u.lppm_applications;
      if (u.fully_protected()) {
        ++protected_users;
        distortion += u.distortion;
      }
    }
    std::printf("  exhaustive: %zu LPPM applications, %zu protected users, "
                "mean distortion %.0f m\n",
                apps, protected_users,
                protected_users ? distortion / protected_users : 0.0);
    // First-hit engine: same context, early-exit composition pass.
    auto config = harness.config();
    (void)config;
    core::MoodEngine engine = harness.make_engine();
    core::MoodConfig first_hit_config = engine.config();
    first_hit_config.first_hit = true;
    std::vector<const attacks::Attack*> views;
    for (const auto& a : harness.attacks()) views.push_back(a.get());
    metrics::SpatialTemporalDistortion metric;
    const core::MoodEngine fast(harness.registry().singles(),
                                harness.registry().multi_compositions(),
                                views, &metric, first_hit_config);
    std::size_t fast_apps = 0, fast_protected = 0;
    double fast_distortion = 0.0;
    for (const auto& pair : harness.pairs()) {
      core::ProtectionResult cost;
      const auto candidate = fast.search(pair.test, &cost);
      fast_apps += cost.lppm_applications;
      if (candidate) {
        ++fast_protected;
        fast_distortion += candidate->distortion;
      }
    }
    std::printf("  first-hit:  %zu LPPM applications, %zu protected users, "
                "mean distortion %.0f m\n",
                fast_apps, fast_protected,
                fast_protected ? fast_distortion / fast_protected : 0.0);
    std::printf("  (first-hit trades utility for search cost; protection "
                "counts should match)\n");
  }

  bench::print_header("Ablation 2: recursion floor delta (" + name + ")");
  std::printf("  %-8s %12s %22s\n", "delta", "data-loss",
              "fully-protected users");
  for (const int hours : {1, 4, 12, 24}) {
    const auto dataset =
        simulation::make_preset_dataset(name, ctx.scale, ctx.seed);
    core::ExperimentConfig config;
    config.mood.delta = hours * mobility::kHour;
    const core::ExperimentHarness h(dataset, config, ctx.seed);
    const auto result = h.evaluate_mood_full();
    std::printf("  %2d h     %9.2f%% %22zu\n", hours,
                100.0 * result.data_loss(),
                result.users.size() - result.non_protected_users());
  }

  bench::print_header("Ablation 3: 24 h pre-slicing on/off (" + name + ")");
  {
    const auto engine = harness.make_engine();
    std::size_t direct_lost = 0, presliced_lost = 0, total = 0;
    for (const auto& pair : harness.pairs()) {
      if (engine.search(pair.test)) {
        total += pair.test.size();
        continue;  // whole-trace protection: identical in both modes
      }
      total += pair.test.size();
      // Without pre-slicing: recursive halving from the full trace.
      direct_lost += engine.protect(pair.test).lost_records;
      // With pre-slicing (the paper's deployment mode).
      presliced_lost += engine.protect_crowdsensing(pair.test).lost_records;
    }
    std::printf("  direct recursion : %.2f%% data loss\n",
                total ? 100.0 * direct_lost / total : 0.0);
    std::printf("  24 h pre-slicing : %.2f%% data loss\n",
                total ? 100.0 * presliced_lost / total : 0.0);
  }
  return 0;
}
