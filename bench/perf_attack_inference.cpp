// Perf bench for the attack-inference hot path (the PR-3 optimization):
// times the targeted re-identification query per attack and the end-to-end
// evaluate_mood_full pipeline through both the pre-optimization reference
// scans and the optimized flat-profile + branch-and-bound path, verifying
// decision-for-decision agreement.
//
//   ./perf_attack_inference [--datasets=cabspotting] [--scale=0.25]
//                           [--seed=7] [--repetitions=3] [--skip-full]
//                           [--json=perf.json]
//
// Defaults to cabspotting — the paper's largest population (531 users),
// where the O(users x cells) scans dominate and the branch-and-bound
// payoff is the production story. --json writes one "mood-bench/1"
// document (for the committed BENCH_pr3.json trajectory seeds); with
// multiple --datasets the document covers the last one.
//
// Exits non-zero if the two paths ever disagree.

#include <cstdio>
#include <string>
#include <vector>

#include "core/inference_bench.h"
#include "experiment_common.h"
#include "report/report.h"

int main(int argc, char** argv) {
  using namespace mood;
  const support::Options options(argc, argv);
  bench::BenchContext ctx = bench::parse_context(argc, argv);
  if (options.get_string("datasets", "").empty()) {
    ctx.datasets = {"cabspotting"};  // scan-bound by population size
  }
  const std::int64_t repetitions = options.get_int("repetitions", 3);
  if (repetitions <= 0) {
    std::fprintf(stderr, "--repetitions must be positive\n");
    return 2;
  }
  core::InferenceBenchOptions bench_options;
  bench_options.repetitions = static_cast<std::size_t>(repetitions);
  bench_options.run_full = !options.get_bool("skip-full", false);
  const std::string json_path = options.get_string("json", "");

  bool all_ok = true;
  for (const auto& preset : ctx.datasets) {
    bench::print_header("attack inference: " + preset);
    const auto dataset =
        simulation::make_preset_dataset(preset, ctx.scale, ctx.seed);
    const core::ExperimentHarness harness(dataset, ctx.config, ctx.seed);
    std::printf("%zu active users, %zu test records\n",
                harness.pairs().size(), harness.total_test_records());

    const auto cases = core::run_inference_bench(harness, bench_options);
    std::printf("%-24s %8s %12s %12s %8s %s\n", "benchmark", "queries",
                "reference_s", "optimized_s", "speedup", "agree");
    for (const auto& benchmark : cases) {
      std::printf("%-24s %8zu %12.3f %12.3f %7.1fx %s\n",
                  benchmark.name.c_str(), benchmark.queries,
                  benchmark.reference_seconds, benchmark.optimized_seconds,
                  benchmark.speedup(), benchmark.agreement ? "yes" : "NO");
      if (!benchmark.agreement) {
        std::printf("  MISMATCH: %s\n", benchmark.mismatch.c_str());
        all_ok = false;
      }
    }

    if (!json_path.empty()) {
      report::RunMetadata meta;
      meta.tool = "perf_attack_inference";
      meta.dataset = dataset.name();
      meta.seed = ctx.seed;
      report::Json dataset_doc = report::dataset_summary(dataset);
      dataset_doc["active_users"] = harness.pairs().size();
      report::write_json_file(
          json_path,
          report::make_bench_report(meta, std::move(dataset_doc), cases));
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return all_ok ? 0 : 1;
}
