// Perf bench for the attack-inference hot path: times the targeted
// re-identification query per attack and the end-to-end evaluate_mood_full
// pipeline through the pre-optimization reference scans, the linear
// branch-and-bound scans (PR 3) and the population index (PR 6), verifying
// decision-for-decision agreement.
//
//   ./perf_attack_inference [--datasets=cabspotting] [--scale=0.25]
//                           [--seed=7] [--repetitions=3] [--skip-full]
//                           [--index=on|off|ab] [--json=perf.json]
//
// Defaults to cabspotting — the paper's largest population (531 users),
// where the O(users x cells) scans dominate and pruning is the production
// story. --json writes one "mood-bench/1" document (for the committed
// BENCH_pr3.json trajectory seeds); with multiple --datasets the document
// covers the last one.
//
// Population-scaling sweep (the PR 6 sublinearity evidence):
//
//   ./perf_attack_inference --sweep [--sweep-users=1000,2500,5000,10000]
//                           [--datasets=city-small] [--json=sweep.json]
//
// For each population size, replays every targeted query through the
// linear scans and through the index, checks the decisions match, and
// reports exact evaluations per query + prune rate. --json then writes a
// "mood-index-sweep/1" document (the committed BENCH_pr6.json): exact
// evaluations per query growing sublinearly in the trained population is
// the acceptance criterion.
//
// Exits non-zero if the paths ever disagree.

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "attacks/attack.h"
#include "core/inference_bench.h"
#include "experiment_common.h"
#include "report/report.h"

namespace {

using namespace mood;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One attack's scan-vs-index comparison at one population size.
struct SweepPoint {
  std::string attack;
  std::size_t queries = 0;  ///< train/test pairs replayed
  std::size_t trained_users = 0;
  double scan_seconds = 0.0;   ///< one full pass of the queries via scans
  double index_seconds = 0.0;  ///< same pass through the index
  std::uint64_t index_queries = 0;  ///< argmin + is-first per pair
  std::uint64_t exact_evals = 0;
  std::uint64_t pruned = 0;
  bool agreement = true;
  std::string mismatch;

  [[nodiscard]] double exact_evals_per_query() const {
    return index_queries == 0 ? 0.0
                              : static_cast<double>(exact_evals) /
                                    static_cast<double>(index_queries);
  }
  [[nodiscard]] double prune_rate() const {
    const double candidates = static_cast<double>(index_queries) *
                              static_cast<double>(trained_users);
    return candidates == 0.0 ? 0.0 : static_cast<double>(pruned) / candidates;
  }
};

/// Answers + decisions of one pass of every targeted query in the current
/// query mode, with the wall time of the pass.
struct SweepPass {
  std::vector<std::optional<mobility::UserId>> answers;
  std::vector<bool> decisions;
  double seconds = 0.0;
};

SweepPass run_pass(const attacks::Attack& attack,
                   const core::ExperimentHarness& harness) {
  SweepPass pass;
  pass.answers.reserve(harness.pairs().size());
  pass.decisions.reserve(harness.pairs().size());
  const auto start = Clock::now();
  for (const auto& pair : harness.pairs()) {
    pass.answers.push_back(attack.reidentify(pair.test));
    pass.decisions.push_back(
        attack.reidentifies_target(pair.test, pair.test.user()));
  }
  pass.seconds = seconds_since(start);
  return pass;
}

SweepPoint sweep_attack(const attacks::Attack& attack,
                        const core::ExperimentHarness& harness) {
  SweepPoint point;
  point.attack = attack.name();
  point.queries = harness.pairs().size();
  point.trained_users = attack.trained_users();

  harness.set_attack_query_mode(attacks::QueryMode::kScan);
  const SweepPass scan = run_pass(attack, harness);
  point.scan_seconds = scan.seconds;

  harness.set_attack_query_mode(attacks::QueryMode::kIndex);
  const attacks::IndexStats before = attack.index_stats();
  const SweepPass indexed = run_pass(attack, harness);
  const attacks::IndexStats after = attack.index_stats();
  point.index_seconds = indexed.seconds;
  point.index_queries = after.queries - before.queries;
  point.exact_evals = after.exact_evaluations - before.exact_evaluations;
  point.pruned = after.pruned_candidates - before.pruned_candidates;

  for (std::size_t i = 0; i < harness.pairs().size(); ++i) {
    if (scan.answers[i] == indexed.answers[i] &&
        scan.decisions[i] == indexed.decisions[i]) {
      continue;
    }
    point.agreement = false;
    point.mismatch = "user " + harness.pairs()[i].test.user() + ": scan=" +
                     scan.answers[i].value_or("(none)") + " index=" +
                     indexed.answers[i].value_or("(none)");
    break;
  }
  return point;
}

std::vector<std::size_t> parse_sizes(const std::string& list) {
  std::vector<std::size_t> sizes;
  std::string current;
  for (const char c : list + ",") {
    if (c == ',') {
      if (!current.empty()) sizes.push_back(std::stoull(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  return sizes;
}

int run_population_sweep(const bench::BenchContext& ctx,
                         const std::string& preset,
                         const std::vector<std::size_t>& sizes,
                         const std::string& json_path) {
  report::Json points = report::Json::array();
  bool all_ok = true;
  for (const std::size_t users : sizes) {
    bench::print_header("index sweep: " + preset + ", " +
                        std::to_string(users) + " users");
    simulation::GeneratorParams params =
        simulation::preset_params(preset, ctx.scale, ctx.seed);
    if (params.districts > 0) {
      // Hold commuter density constant: a bigger city has more
      // neighbourhoods, not denser ones (the preset's district count is
      // tuned for its nominal population).
      params.districts =
          std::max<std::size_t>(4, params.districts * users / params.users);
    }
    params.users = users;
    const auto dataset = simulation::generate(params);
    const core::ExperimentHarness harness(dataset, ctx.config, ctx.seed);
    std::printf("%zu active users, %zu test records\n",
                harness.pairs().size(), harness.total_test_records());
    std::printf("%-18s %8s %10s %9s %9s %10s %8s %s\n", "attack", "queries",
                "trained", "scan_s", "index_s", "evals/qry", "prune",
                "agree");

    report::Json point = report::Json::object();
    point["users"] = users;
    point["active_users"] = harness.pairs().size();
    point["attacks"] = report::Json::array();
    for (const auto& attack : harness.attacks()) {
      const SweepPoint result = sweep_attack(*attack, harness);
      std::printf("%-18s %8zu %10zu %9.3f %9.3f %10.1f %7.1f%% %s\n",
                  result.attack.c_str(), result.queries, result.trained_users,
                  result.scan_seconds, result.index_seconds,
                  result.exact_evals_per_query(), 100.0 * result.prune_rate(),
                  result.agreement ? "yes" : "NO");
      if (!result.agreement) {
        std::printf("  MISMATCH: %s\n", result.mismatch.c_str());
        all_ok = false;
      }
      report::Json entry = report::Json::object();
      entry["name"] = result.attack;
      entry["pairs"] = result.queries;
      entry["index_queries"] = result.index_queries;
      entry["trained_users"] = result.trained_users;
      entry["scan_seconds"] = result.scan_seconds;
      entry["index_seconds"] = result.index_seconds;
      entry["exact_evaluations"] = result.exact_evals;
      entry["exact_evaluations_per_query"] = result.exact_evals_per_query();
      entry["pruned_candidates"] = result.pruned;
      entry["prune_rate"] = result.prune_rate();
      entry["agreement"] = result.agreement;
      point["attacks"].push_back(std::move(entry));
    }
    points.push_back(std::move(point));
  }

  if (!json_path.empty()) {
    report::Json document = report::Json::object();
    document["schema"] = "mood-index-sweep/1";
    document["preset"] = preset;
    document["scale"] = ctx.scale;
    document["seed"] = ctx.seed;
    document["agreement"] = all_ok;
    document["points"] = std::move(points);
    report::write_json_file(json_path, document);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mood;
  const support::Options options(argc, argv);
  bench::BenchContext ctx = bench::parse_context(argc, argv);
  const std::string json_path = options.get_string("json", "");

  if (options.get_bool("sweep", false)) {
    const std::string preset = options.get_string("datasets", "").empty()
                                   ? "city-small"
                                   : ctx.datasets.front();
    const auto sizes = parse_sizes(
        options.get_string("sweep-users", "1000,2500,5000,10000"));
    if (sizes.empty()) {
      std::fprintf(stderr, "--sweep-users must name at least one size\n");
      return 2;
    }
    return run_population_sweep(ctx, preset, sizes, json_path);
  }

  if (options.get_string("datasets", "").empty()) {
    ctx.datasets = {"cabspotting"};  // scan-bound by population size
  }
  const std::int64_t repetitions = options.get_int("repetitions", 3);
  if (repetitions <= 0) {
    std::fprintf(stderr, "--repetitions must be positive\n");
    return 2;
  }
  core::InferenceBenchOptions bench_options;
  bench_options.repetitions = static_cast<std::size_t>(repetitions);
  bench_options.run_full = !options.get_bool("skip-full", false);
  const std::string index_flag = options.get_string("index", "on");
  if (index_flag == "on") {
    bench_options.index_mode = core::BenchIndexMode::kOn;
  } else if (index_flag == "off") {
    bench_options.index_mode = core::BenchIndexMode::kOff;
  } else if (index_flag == "ab") {
    bench_options.index_mode = core::BenchIndexMode::kAb;
  } else {
    std::fprintf(stderr, "--index must be on, off or ab\n");
    return 2;
  }

  bool all_ok = true;
  for (const auto& preset : ctx.datasets) {
    bench::print_header("attack inference: " + preset);
    const auto dataset =
        simulation::make_preset_dataset(preset, ctx.scale, ctx.seed);
    const core::ExperimentHarness harness(dataset, ctx.config, ctx.seed);
    std::printf("%zu active users, %zu test records\n",
                harness.pairs().size(), harness.total_test_records());

    const auto cases = core::run_inference_bench(harness, bench_options);
    std::printf("%-24s %8s %12s %12s %8s %8s %s\n", "benchmark", "queries",
                "reference_s", "optimized_s", "speedup", "prune", "agree");
    for (const auto& benchmark : cases) {
      char prune[16];
      if (benchmark.index_timed) {
        std::snprintf(prune, sizeof prune, "%7.1f%%",
                      100.0 * benchmark.prune_rate());
      } else {
        std::snprintf(prune, sizeof prune, "%8s", "-");
      }
      std::printf("%-24s %8zu %12.3f %12.3f %7.1fx %s %s\n",
                  benchmark.name.c_str(), benchmark.queries,
                  benchmark.reference_seconds, benchmark.optimized_seconds,
                  benchmark.speedup(), prune,
                  benchmark.agreement ? "yes" : "NO");
      if (!benchmark.agreement) {
        std::printf("  MISMATCH: %s\n", benchmark.mismatch.c_str());
        all_ok = false;
      }
    }

    if (!json_path.empty()) {
      report::RunMetadata meta;
      meta.tool = "perf_attack_inference";
      meta.dataset = dataset.name();
      meta.seed = ctx.seed;
      report::Json dataset_doc = report::dataset_summary(dataset);
      dataset_doc["active_users"] = harness.pairs().size();
      report::write_json_file(
          json_path,
          report::make_bench_report(meta, std::move(dataset_doc), cases));
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  return all_ok ? 0 : 1;
}
