// Dataset publication workflow — the data security expert scenario from the
// paper's problem statement (§2.4): protect a whole mobility dataset before
// releasing it, and compare the data loss of the naive strategies (delete
// everything a re-identification attack still catches) against MooD.
//
// Run:  ./dataset_publication [--dataset=privamov] [--scale=0.08] [--seed=7]

#include <cstdio>

#include "core/experiment.h"
#include "simulation/presets.h"
#include "support/logging.h"
#include "support/options.h"

int main(int argc, char** argv) {
  using namespace mood;
  const support::Options options(argc, argv);
  support::set_log_level(support::LogLevel::kWarn);

  const std::string name = options.get_string("dataset", "privamov");
  const double scale = options.get_double("scale", 0.08);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 7));

  std::printf("generating synthetic '%s' (scale %.2f)...\n", name.c_str(),
              scale);
  const mobility::Dataset dataset =
      simulation::make_preset_dataset(name, scale, seed);
  std::printf("dataset: %zu users, %zu records\n\n", dataset.user_count(),
              dataset.record_count());

  const core::ExperimentHarness harness(dataset, {}, seed);

  std::printf("%-12s %14s %10s\n", "strategy", "non-protected", "data-loss");
  auto show = [](const char* label, std::size_t bad, std::size_t total,
                 double loss) {
    std::printf("%-12s %8zu/%-5zu %9.1f%%\n", label, bad, total,
                100.0 * loss);
  };

  const auto raw = harness.evaluate_no_lppm();
  show("no-LPPM", raw.non_protected_users(), raw.user_count(),
       raw.data_loss());
  for (const char* lppm : {"GeoI", "TRL", "HMC"}) {
    const auto r = harness.evaluate_single(lppm);
    show(lppm, r.non_protected_users(), r.user_count(), r.data_loss());
  }
  const auto hybrid = harness.evaluate_hybrid();
  show("HybridLPPM", hybrid.non_protected_users(), hybrid.user_count(),
       hybrid.data_loss());
  const auto mood = harness.evaluate_mood_full();
  show("MooD", mood.non_protected_users(), mood.users.size(),
       mood.data_loss());

  // Utility of what MooD publishes.
  const auto bands = mood.distortion_bands();
  std::printf("\nMooD utility bands (protected users): "
              "<500m:%zu  <1km:%zu  <5km:%zu  >=5km:%zu\n",
              bands[0], bands[1], bands[2], bands[3]);
  return 0;
}
