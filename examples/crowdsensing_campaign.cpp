// Crowdsensing campaign — the paper's deployment scenario (§3.4, §4.2):
// users contribute data daily; MooD protects each 24 h chunk before upload,
// publishing sub-traces under fresh pseudonyms. Chunks that cannot be
// protected (even after recursive splitting down to delta = 4 h) are
// withheld from the server.
//
// Run:  ./crowdsensing_campaign [--users=10] [--days=8] [--seed=11]

#include <cstdio>
#include <map>

#include "core/experiment.h"
#include "simulation/generator.h"
#include "support/logging.h"
#include "support/options.h"

int main(int argc, char** argv) {
  using namespace mood;
  const support::Options options(argc, argv);
  support::set_log_level(support::LogLevel::kWarn);

  simulation::GeneratorParams params;
  params.users = static_cast<std::size_t>(options.get_int("users", 10));
  params.days = static_cast<int>(options.get_int("days", 8));
  params.records_per_user_per_day = 160.0;
  params.p_private_poi = 0.75;
  params.private_poi_spread_m = 4000.0;
  params.seed = static_cast<std::uint64_t>(options.get_int("seed", 11));
  const mobility::Dataset dataset = simulation::generate(params);

  core::ExperimentConfig config;
  config.min_records = 8;
  const core::ExperimentHarness harness(dataset, config, params.seed);
  const core::MoodEngine engine = harness.make_engine();

  std::printf("campaign: %zu participants, %d days (24 h upload chunks, "
              "delta = 4 h)\n\n",
              harness.pairs().size(), params.days);

  std::size_t uploaded_pieces = 0, withheld_records = 0, total_records = 0;
  std::map<std::string, std::size_t> winners;
  for (const auto& pair : harness.pairs()) {
    const auto result = engine.protect_crowdsensing(pair.test);
    total_records += result.original_records;
    withheld_records += result.lost_records;
    uploaded_pieces += result.pieces.size();
    for (const auto& piece : result.pieces) winners[piece.lppm]++;
    std::printf("  %-16s pieces=%2zu  uploaded=%5zu rec  withheld=%4zu rec\n",
                pair.test.user().c_str(), result.pieces.size(),
                result.protected_records(), result.lost_records);
  }

  std::printf("\nserver received %zu pseudonymous sub-traces\n",
              uploaded_pieces);
  std::printf("records withheld: %zu / %zu (%.2f%%)\n", withheld_records,
              total_records,
              total_records
                  ? 100.0 * static_cast<double>(withheld_records) /
                        static_cast<double>(total_records)
                  : 0.0);
  std::printf("\nwinning mechanisms across uploaded pieces:\n");
  for (const auto& [lppm, count] : winners) {
    std::printf("  %-14s %zu pieces\n", lppm.c_str(), count);
  }
  return 0;
}
