// Quickstart: protect one user's mobility trace with MooD.
//
// Generates a small synthetic city, trains the three re-identification
// attacks on everyone's background data, then walks one user through the
// MooD pipeline, printing what the engine decided at every step.
//
// Run:  ./quickstart [--users=12] [--days=8] [--seed=42]

#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "report/report.h"
#include "simulation/generator.h"
#include "support/logging.h"
#include "support/options.h"

int main(int argc, char** argv) {
  using namespace mood;
  const support::Options options(argc, argv);
  support::set_log_level(support::LogLevel::kWarn);

  // 1. A city of routine users (see simulation::GeneratorParams for knobs).
  simulation::GeneratorParams params;
  params.users = static_cast<std::size_t>(options.get_int("users", 12));
  params.days = static_cast<int>(options.get_int("days", 8));
  params.records_per_user_per_day = 180.0;
  params.p_private_poi = 0.75;
  // Keep private places within a few km: a 12-user donor pool is sparse,
  // and HMC refuses relocation plans beyond its utility budget.
  params.private_poi_spread_m = 4000.0;
  params.seed = static_cast<std::uint64_t>(options.get_int("seed", 42));
  const mobility::Dataset dataset = simulation::generate(params);
  std::printf("dataset: %zu users, %zu records\n", dataset.user_count(),
              dataset.record_count());

  // 2. The harness splits train/test, trains POI/PIT/AP attacks and
  //    instantiates GeoI / TRL / HMC with the paper's parameters.
  core::ExperimentConfig config;
  config.min_records = 8;
  const core::ExperimentHarness harness(dataset, config, params.seed);

  // 3. Is the first user vulnerable at all?
  const auto& pair = harness.pairs().front();
  std::printf("\nprotecting %s (%zu test records)\n", pair.test.user().c_str(),
              pair.test.size());
  for (const auto& attack : harness.attacks()) {
    const auto answer = attack->reidentify(pair.test);
    std::printf("  raw trace vs %-10s -> %s\n", attack->name().c_str(),
                answer ? answer->c_str() : "(no match)");
  }

  // 4. Run Algorithm 1. The outcome is printed through src/report — the
  //    same serializer the mood CLI uses, so this document has the exact
  //    shape scripts downstream would consume.
  const core::MoodEngine engine = harness.make_engine();
  const core::ProtectionResult result = engine.protect(pair.test);
  std::printf("\nMooD outcome:\n");
  report::to_json(result).write(std::cout);

  // 5. Confirm the published pieces defeat every attack.
  bool all_safe = true;
  for (const auto& piece : result.pieces) {
    for (const auto& attack : harness.attacks()) {
      const auto answer = attack->reidentify(piece.trace);
      if (answer && *answer == pair.test.user()) all_safe = false;
    }
  }
  std::printf("\npublished pieces re-identified? %s\n",
              all_safe ? "no — user protected" : "YES — check configuration");
  return all_safe ? 0 : 1;
}
