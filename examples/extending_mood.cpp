// Extending MooD — the paper's §6 future-work direction made concrete:
// "MooD can be extended by using state-of-the-art LPPMs, attacks and
// utility metrics". This example registers additional LPPMs (the built-in
// extension mechanisms plus a user-defined one written right here) next to
// the paper's set and lets the engine search the enlarged composition
// space: with n = 5 single LPPMs, |C| = sum n!/(n-i)! = 325 candidates.
//
// Run:  ./extending_mood [--users=10] [--days=8] [--seed=5]

#include <cstdio>

#include "core/experiment.h"
#include "lppm/composition.h"
#include "lppm/promesse.h"
#include "lppm/registry.h"
#include "lppm/time_distortion.h"
#include "metrics/coverage.h"
#include "simulation/generator.h"
#include "support/logging.h"
#include "support/options.h"

namespace {

using namespace mood;

/// A user-defined LPPM: coordinate truncation ("geohash rounding") —
/// drops decimal precision so positions land on a coarse lattice. A few
/// lines are all a new mechanism needs.
class LatticeRounding final : public lppm::Lppm {
 public:
  explicit LatticeRounding(double step_deg = 0.01) : step_(step_deg) {}

  std::string name() const override { return "Lattice"; }

  mobility::Trace apply(const mobility::Trace& trace,
                        support::RngStream) const override {
    std::vector<mobility::Record> out;
    out.reserve(trace.size());
    for (const auto& r : trace.records()) {
      out.push_back(mobility::Record{
          geo::GeoPoint{std::round(r.position.lat / step_) * step_,
                        std::round(r.position.lon / step_) * step_},
          r.time});
    }
    return mobility::Trace(trace.user(), std::move(out));
  }

 private:
  double step_;
};

}  // namespace

int main(int argc, char** argv) {
  const support::Options options(argc, argv);
  support::set_log_level(support::LogLevel::kWarn);

  simulation::GeneratorParams params;
  params.users = static_cast<std::size_t>(options.get_int("users", 10));
  params.days = static_cast<int>(options.get_int("days", 8));
  params.records_per_user_per_day = 160.0;
  params.p_private_poi = 0.8;
  params.private_poi_spread_m = 5000.0;
  params.seed = static_cast<std::uint64_t>(options.get_int("seed", 5));
  const mobility::Dataset dataset = simulation::generate(params);

  // Standard harness: trains the attacks, registers {GeoI, TRL, HMC}.
  core::ExperimentConfig config;
  config.min_records = 8;
  const core::ExperimentHarness harness(dataset, config, params.seed);

  // Build an EXTENDED registry next to the harness's standard one.
  lppm::LppmRegistry extended;
  extended.add(std::make_unique<lppm::TimeDistortion>());
  extended.add(std::make_unique<lppm::Promesse>());
  extended.add(std::make_unique<LatticeRounding>());
  std::vector<const lppm::Lppm*> singles = harness.registry().singles();
  for (const auto* extra : extended.singles()) singles.push_back(extra);

  std::printf("single LPPMs: %zu -> composition space |C| = %zu\n",
              singles.size(),
              lppm::composition_count(singles.size(), 1, singles.size()));

  std::vector<const attacks::Attack*> attack_views;
  for (const auto& attack : harness.attacks()) {
    attack_views.push_back(attack.get());
  }
  const metrics::SpatialTemporalDistortion metric;
  const core::MoodEngine engine(
      singles, lppm::enumerate_compositions(singles, 2, 3), attack_views,
      &metric, core::MoodConfig{});

  std::printf("\n%-22s %-18s %10s %10s %10s\n", "user", "winner", "STD(m)",
              "coverage", "POIs-kept");
  const geo::CellGrid grid(
      geo::LocalProjection(params.city_center), 800.0);
  for (const auto& pair : harness.pairs()) {
    const auto candidate = engine.search(pair.test);
    if (!candidate) {
      std::printf("%-22s %-18s\n", pair.test.user().c_str(), "(orphan)");
      continue;
    }
    std::printf("%-22s %-18s %10.0f %9.0f%% %9.0f%%\n",
                pair.test.user().c_str(), candidate->lppm.c_str(),
                candidate->distortion,
                100.0 * metrics::cell_coverage_similarity(
                            pair.test, candidate->output, grid),
                100.0 * metrics::poi_preservation(pair.test,
                                                  candidate->output));
  }
  std::printf("\n(note how the engine now sometimes prefers the extension "
              "mechanisms:\nPromesse erases POIs with minimal route "
              "distortion, TimeDist preserves\nexact positions for "
              "count-query workloads)\n");
  return 0;
}
