// Attack gallery — a tour of the three re-identification attacks and the
// three LPPMs: shows, for one dataset, how often each attack re-identifies
// users under each protection mechanism (the raw material behind the
// paper's Fig. 2).
//
// Run:  ./attack_gallery [--dataset=geolife] [--scale=0.06] [--seed=3]

#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "simulation/presets.h"
#include "support/logging.h"
#include "support/options.h"
#include "support/thread_pool.h"

int main(int argc, char** argv) {
  using namespace mood;
  const support::Options options(argc, argv);
  support::set_log_level(support::LogLevel::kWarn);

  const std::string name = options.get_string("dataset", "geolife");
  const double scale = options.get_double("scale", 0.06);
  const auto seed = static_cast<std::uint64_t>(options.get_int("seed", 3));

  const mobility::Dataset dataset =
      simulation::make_preset_dataset(name, scale, seed);
  const core::ExperimentHarness harness(dataset, {}, seed);
  const std::size_t users = harness.pairs().size();

  std::printf("dataset %s: %zu active users\n\n", name.c_str(), users);
  std::printf("re-identified users per (attack, protection):\n");
  std::printf("%-12s", "");
  for (const auto& attack : harness.attacks()) {
    std::printf("%12s", attack->name().c_str());
  }
  std::printf("\n");

  const std::vector<std::string> protections{"raw", "GeoI", "TRL", "HMC"};
  for (const auto& protection : protections) {
    std::printf("%-12s", protection.c_str());
    for (std::size_t a = 0; a < harness.attacks().size(); ++a) {
      const auto result =
          protection == "raw"
              ? harness.evaluate_no_lppm({a})
              : harness.evaluate_single(protection, {a});
      std::printf("%9zu/%-2zu", result.non_protected_users(),
                  result.user_count());
    }
    std::printf("\n");
  }

  std::printf("\nreading: POI/PIT attacks collapse once dwell clusters are "
              "destroyed (TRL),\nwhile AP-attack survives mild perturbation "
              "(GeoI) but is confused by HMC.\n");
  return 0;
}
